"""Multi-tenant admission: brownout is structured errors, never latency.

Every rejection path of the router's admission controller, exercised over
the real wire: the global in-flight bound (``queue_full``), the per-tenant
token bucket (``rate_limited``), the cumulative epoch quota
(``budget_exhausted``) and the dynamic fair share between contending
tenants.  Rejections are synchronous and cheap — a saturated router
answers its overflow immediately, it does not make excess clients wait.

The :class:`AdmissionController` unit tests at the bottom pin the exact
arithmetic without processes.
"""

import time

import pytest
from harness import ServeProcess

from repro.distrib import AdmissionController, TenantPolicy
from repro.utils.exceptions import (
    BudgetExhaustedError,
    QueueFullError,
    RateLimitError,
)


def terminal_events(serve, ids):
    """One terminal (result/failed) event per id, in arrival order."""
    events = {}
    while len(events) < len(ids):
        message = serve.next_event()
        if message.get("event") in ("result", "failed") and (
            message.get("id") in ids
        ):
            events[message["id"]] = message
    return events


class TestRouterBrownout:
    def test_overflow_gets_queue_full_not_queueing(self, tmp_path):
        with ServeProcess(tmp_path / "store", workers=1,
                          extra_args=("--max-inflight", "2")) as serve:
            ids = [f"r{index}" for index in range(6)]
            started = time.monotonic()
            for rid in ids:
                serve.send({"op": "select", "target": "mnli", "top_k": 3,
                            "id": rid})
            events = terminal_events(serve, set(ids))
            elapsed = time.monotonic() - started

            failed = [e for e in events.values() if e["event"] == "failed"]
            results = [e for e in events.values() if e["event"] == "result"]
            assert len(results) == 2
            assert len(failed) == 4
            for event in failed:
                assert event["error"]["code"] == "queue_full"
                assert event["error"]["type"] == "QueueFullError"
            # Brownout, not collapse: the four rejections were answered
            # ahead of any training-bound result, well inside the run.
            assert elapsed < 120
            serve.send({"op": "shutdown"})

    def test_rate_limit_is_per_tenant(self, tmp_path):
        with ServeProcess(
            tmp_path / "store", workers=1,
            extra_args=("--tenant-rate", "0.25", "--tenant-burst", "1"),
        ) as serve:
            # Tenant A's burst of one admits the first and rejects the
            # immediate second...
            serve.send({"op": "select", "target": "mnli", "top_k": 3,
                        "tenant": "alpha", "id": "a1"})
            serve.send({"op": "select", "target": "mnli", "top_k": 3,
                        "tenant": "alpha", "id": "a2"})
            # ... while tenant B's own bucket is untouched.
            serve.send({"op": "select", "target": "sst2", "top_k": 3,
                        "tenant": "beta", "id": "b1"})
            events = terminal_events(serve, {"a1", "a2", "b1"})
            assert events["a2"]["event"] == "failed"
            assert events["a2"]["error"]["code"] == "rate_limited"
            assert events["a1"]["event"] == "result"
            assert events["b1"]["event"] == "result"
            serve.send({"op": "shutdown"})

    def test_epoch_quota_exhaustion(self, tmp_path):
        with ServeProcess(tmp_path / "store", workers=1,
                          extra_args=("--tenant-quota", "0.5")) as serve:
            # Quota is post-paid: the first request runs and charges its
            # runtime epochs, pushing the tenant past 0.5 ...
            serve.send({"op": "select", "target": "mnli", "top_k": 3,
                        "tenant": "gamma", "id": "q1"})
            first = serve.wait_for("result", id="q1")
            assert first["runtime_epochs"] > 0.5
            # ... so the next admission is refused.
            serve.send({"op": "select", "target": "mnli", "top_k": 3,
                        "tenant": "gamma", "id": "q2"})
            second = serve.wait_for("failed", id="q2")
            assert second["error"]["code"] == "budget_exhausted"
            # Other tenants' quotas are their own.
            serve.send({"op": "select", "target": "mnli", "top_k": 3,
                        "tenant": "delta", "id": "d1"})
            serve.wait_for("result", id="d1")
            serve.send({"op": "shutdown"})


class TestAdmissionControllerUnit:
    def test_fair_share_squeezes_contending_tenants(self):
        admission = AdmissionController(TenantPolicy(max_inflight=4))
        admission.admit("a")
        admission.admit("a")  # sole tenant: may take up to the full 4
        admission.admit("b")  # second tenant activates: share becomes 2
        with pytest.raises(QueueFullError):
            admission.admit("a")  # a is at its fair share of 2
        admission.admit("b")  # b still under its share
        with pytest.raises(QueueFullError):
            admission.admit("b")

    def test_release_returns_slots_and_charges_epochs(self):
        admission = AdmissionController(
            TenantPolicy(max_inflight=1, tenant_quota=10.0)
        )
        admission.admit("t")
        with pytest.raises(QueueFullError):
            admission.admit("t")
        admission.release("t", epochs=9.0)
        admission.admit("t")
        admission.release("t", epochs=2.0)  # cumulative 11 > quota
        with pytest.raises(BudgetExhaustedError):
            admission.admit("t")

    def test_token_bucket_refills_over_time(self):
        admission = AdmissionController(
            TenantPolicy(max_inflight=100, tenant_rate=50.0, tenant_burst=1)
        )
        admission.admit("t")
        with pytest.raises(RateLimitError):
            admission.admit("t")
        time.sleep(0.05)  # 50/s refills one token in 20ms
        admission.admit("t")

    def test_rejections_are_counted_by_code(self):
        admission = AdmissionController(TenantPolicy(max_inflight=1))
        admission.admit("t")
        for _ in range(3):
            with pytest.raises(QueueFullError):
                admission.admit("u")
        assert admission.stats()["rejected"] == {"queue_full": 3}
