"""Protocol conformance: the routed tier is indistinguishable on the wire.

One fixed scenario of protocol probes runs against both deployment shapes
— a single ``python -m repro serve`` process and a consistent-hash router
over two workers — and every reply is compared: same event names, same
key shapes, and (for everything deterministic) byte-identical payloads
once the legitimately-volatile fields (``id``, ``latency_seconds``) are
stripped.  A client library written against one tier must work, byte for
byte, against the other.

The second half is the headline acceptance check: eight concurrent
requests sharded over two workers produce results bitwise-identical to
the same eight requests on a single process.
"""

import json

import pytest
from harness import ServeProcess

from repro.distrib import HashRing, route_key

VOLATILE = ("id", "latency_seconds")

#: Eight distinct targets whose SHA-256 routing keys split 4/4 over the
#: two-worker ring (placement is deterministic, so this is a constant of
#: the codebase, asserted again inside the test).
CONCURRENT_TARGETS = (
    "mnli", "sst2", "qnli", "cola", "rte", "mrpc", "boolq", "qqp",
)

#: Probes whose replies must match on event name + key shape AND payload.
#: (``stats`` and ``pong`` payloads legitimately differ between tiers —
#: a router reports fleet state, a process reports scheduler state — so
#: they conform on event name and correlation id only.)
FULL_PAYLOAD_PROBES = (
    "select_accepted",
    "select_result",
    "select_missing_target",
    "unknown_op",
    "poll_unknown_id",
    "timeout_failure",
    "shutdown",
)


def run_scenario(serve: ServeProcess) -> dict:
    """Drive the conformance scenario; return ``{probe: event}``."""
    transcript = {}
    serve.send({"op": "select", "target": "mnli", "top_k": 5, "id": "ok"})
    transcript["select_accepted"] = serve.wait_for("accepted", id="ok")
    transcript["select_result"] = serve.wait_for("result", id="ok")

    serve.send({"op": "select", "id": "bad"})
    transcript["select_missing_target"] = serve.wait_for("error", id="bad")

    serve.send({"op": "bogus", "id": "u1"})
    transcript["unknown_op"] = serve.wait_for("error", id="u1")

    serve.send({"op": "poll", "id": "nope"})
    transcript["poll_unknown_id"] = serve.wait_for("error", id="nope")

    serve.send({"op": "select", "target": "boolq", "top_k": 3,
                "timeout": 0.001, "id": "late"})
    transcript["timeout_failure"] = serve.wait_for("failed", id="late")

    serve.send({"op": "stats", "id": "st"})
    transcript["stats"] = serve.wait_for("stats", id="st")

    serve.send({"op": "ping", "id": "pg"})
    transcript["ping"] = serve.wait_for("pong", id="pg")

    serve.send({"op": "shutdown", "id": "end"})
    transcript["shutdown"] = serve.wait_for("shutting_down", id="end")
    return transcript


def strip(event: dict) -> dict:
    return {k: v for k, v in event.items() if k not in VOLATILE}


def canonical(event: dict) -> str:
    return json.dumps(strip(event), sort_keys=True)


@pytest.fixture(scope="module")
def single_transcript(tmp_path_factory):
    store = tmp_path_factory.mktemp("conformance-single")
    with ServeProcess(store / "store") as serve:
        return serve.banner, run_scenario(serve)


@pytest.fixture(scope="module")
def routed_transcript(tmp_path_factory):
    store = tmp_path_factory.mktemp("conformance-routed")
    with ServeProcess(store / "store", workers=2) as serve:
        return serve.banner, run_scenario(serve)


class TestProtocolConformance:
    def test_scenario_covers_identical_probes(
        self, single_transcript, routed_transcript
    ):
        assert single_transcript[1].keys() == routed_transcript[1].keys()

    def test_event_names_and_key_shapes_identical(
        self, single_transcript, routed_transcript
    ):
        _, single = single_transcript
        _, routed = routed_transcript
        for probe in single:
            if probe in ("stats", "ping"):
                continue
            single_shape = (single[probe]["event"], sorted(single[probe]))
            routed_shape = (routed[probe]["event"], sorted(routed[probe]))
            assert single_shape == routed_shape, probe

    def test_full_payloads_byte_identical(
        self, single_transcript, routed_transcript
    ):
        _, single = single_transcript
        _, routed = routed_transcript
        for probe in FULL_PAYLOAD_PROBES:
            assert canonical(single[probe]) == canonical(routed[probe]), probe

    def test_structured_errors_conform(self, routed_transcript):
        _, routed = routed_transcript
        error = routed["timeout_failure"]["error"]
        assert sorted(error) == ["code", "message", "type"]
        assert error["code"] == "timeout"

    def test_aggregated_probes_still_correlate(
        self, single_transcript, routed_transcript
    ):
        """stats/pong differ in payload by design but must keep the
        event name + correlation id contract."""
        _, single = single_transcript
        _, routed = routed_transcript
        for probe, rid in (("stats", "st"), ("ping", "pg")):
            assert single[probe]["event"] == routed[probe]["event"]
            assert single[probe]["id"] == routed[probe]["id"] == rid

    def test_banner_contract(self, single_transcript, routed_transcript):
        single_banner, _ = single_transcript
        routed_banner, _ = routed_transcript
        for key in ("event", "modality", "num_models", "policy",
                    "max_concurrent", "epoch_budget", "max_queue",
                    "zoo_version", "port", "store_dir", "recovered"):
            assert key in single_banner, key
            assert key in routed_banner, key
        assert routed_banner["zoo_version"] == single_banner["zoo_version"]
        assert len(routed_banner["workers"]) == 2


class TestConcurrentBitwiseEquivalence:
    def _run_concurrent(self, serve: ServeProcess) -> dict:
        for index, target in enumerate(CONCURRENT_TARGETS):
            serve.send({"op": "select", "target": target, "top_k": 3,
                        "id": f"c{index}"})
        results = {}
        for index, target in enumerate(CONCURRENT_TARGETS):
            results[target] = strip(serve.wait_for("result", id=f"c{index}"))
        serve.send({"op": "shutdown"})
        return results

    def test_eight_concurrent_requests_over_two_workers_match_single(
        self, tmp_path
    ):
        with ServeProcess(tmp_path / "single") as serve:
            reference = self._run_concurrent(serve)

        with ServeProcess(tmp_path / "routed", workers=2) as serve:
            # Precondition (deterministic by construction): the eight
            # targets really shard over both workers.
            ring = HashRing([w["name"] for w in serve.banner["workers"]])
            version = serve.banner["zoo_version"]
            owners = {
                ring.lookup(route_key(version, target))
                for target in CONCURRENT_TARGETS
            }
            assert len(owners) >= 2
            routed = self._run_concurrent(serve)

        assert routed == reference
