"""Unit tests of the consistent-hash ring (placement determinism).

The property tier (``tests/property/test_property_ring.py``) proves the
statistical invariants over random node sets; this module pins the exact
behaviours the router depends on — including determinism across *real*
interpreter processes, which is the one property an in-process suite
cannot witness (``PYTHONHASHSEED`` salting is per-process).
"""

import json
import subprocess
import sys

import pytest

from repro.distrib import HashRing, route_key
from repro.utils.exceptions import ConfigurationError

KEYS = [f"key-{index}" for index in range(200)]


class TestHashRing:
    def test_lookup_is_deterministic(self):
        ring = HashRing(["w0", "w1", "w2"])
        first = [ring.lookup(key) for key in KEYS]
        second = [ring.lookup(key) for key in KEYS]
        assert first == second

    def test_insertion_order_is_irrelevant(self):
        forward = HashRing(["w0", "w1", "w2"])
        backward = HashRing(["w2", "w1", "w0"])
        assert forward.assignments(KEYS) == backward.assignments(KEYS)

    def test_all_nodes_receive_keys(self):
        ring = HashRing([f"w{index}" for index in range(4)])
        owners = set(ring.assignments(KEYS).values())
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_removal_only_moves_the_removed_nodes_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = ring.assignments(KEYS)
        ring.remove("w1")
        after = ring.assignments(KEYS)
        for key in KEYS:
            if before[key] != "w1":
                assert after[key] == before[key]
            else:
                assert after[key] != "w1"

    def test_add_is_idempotent_and_remove_unknown_is_a_noop(self):
        ring = HashRing(["w0"])
        ring.add("w0")
        assert len(ring) == 1
        ring.remove("missing")
        assert ring.nodes == ["w0"]

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ConfigurationError):
            HashRing().lookup("anything")

    def test_route_key_separates_version_and_target(self):
        # Hashing the pair, not the concatenation: shifting a character
        # across the boundary must change the key.
        assert route_key("v1", "ab") != route_key("v1a", "b")

    def test_placement_matches_across_processes(self):
        """The exact property the routed tier stands on: a ring re-derived
        in a *different* interpreter (different hash seed) places every
        key identically, so a restarted router resubmits each request to
        the worker that owns its journals."""
        nodes = ["w0", "w1", "w2"]
        keys = [route_key(f"v{index}", "mnli") for index in range(20)] + KEYS[:30]
        local = HashRing(nodes).assignments(keys)
        script = (
            "import json, sys\n"
            "from repro.distrib import HashRing\n"
            "nodes, keys = json.load(sys.stdin)\n"
            "print(json.dumps(HashRing(nodes).assignments(keys)))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([nodes, keys]),
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": ":".join(sys.path), "PYTHONHASHSEED": "12345"},
        ).stdout
        assert json.loads(output) == local
