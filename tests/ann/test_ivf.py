"""Unit tests for the IVF index (repro.ann)."""

import numpy as np
import pytest

from repro.ann import IVFIndex, exact_search, recall_at_k
from repro.utils.exceptions import ConfigurationError, DataError


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(0).normal(size=(300, 12))


@pytest.fixture(scope="module")
def index(vectors):
    return IVFIndex(vectors, seed=0)


class TestExactSearch:
    def test_orders_by_distance_then_id(self, vectors):
        ids, distances = exact_search(vectors, vectors[7], 10)
        assert ids[0] == 7 and distances[0] == 0.0
        assert np.all(np.diff(distances) >= 0)
        for i in range(len(ids) - 1):
            if distances[i] == distances[i + 1]:
                assert ids[i] < ids[i + 1]

    def test_k_larger_than_database_returns_everything(self, vectors):
        ids, _ = exact_search(vectors, vectors[0], 10_000)
        assert sorted(ids.tolist()) == list(range(vectors.shape[0]))

    def test_rejects_dimension_mismatch(self, vectors):
        with pytest.raises(DataError):
            exact_search(vectors, np.zeros(3), 5)


class TestIVFIndex:
    def test_default_geometry(self, index, vectors):
        assert index.nlist == round(np.sqrt(vectors.shape[0]))
        assert len(index) == vectors.shape[0]
        assert index.dimension == vectors.shape[1]

    def test_all_probes_identical_to_exact(self, index, vectors):
        for q in range(0, 300, 37):
            exact_ids, exact_d = exact_search(vectors, vectors[q], 15)
            ids, d = index.search(vectors[q], 15, nprobe=index.nlist)
            assert np.array_equal(exact_ids, ids)
            assert np.array_equal(exact_d, d)

    def test_candidate_distances_are_exact(self, index, vectors):
        query = vectors[3] + 0.01
        ids, distances = index.search(query, 5, nprobe=2)
        expected = np.linalg.norm(vectors[ids] - query, axis=1)
        assert np.array_equal(distances, np.sqrt(np.einsum(
            "ij,ij->i", vectors[ids] - query, vectors[ids] - query
        )))
        assert np.allclose(distances, expected)

    def test_short_candidate_set_falls_back_to_exact(self, vectors):
        # One probe cannot hold 290 of 300 vectors: the fallback must make
        # the result identical to exact search, not shorter.
        index = IVFIndex(vectors, nlist=17, seed=0)
        query = np.random.default_rng(1).normal(size=12)
        ids, distances = index.search(query, 290, nprobe=1)
        exact_ids, exact_d = exact_search(vectors, query, 290)
        assert np.array_equal(ids, exact_ids)
        assert np.array_equal(distances, exact_d)

    def test_add_then_search_finds_the_new_vector(self, vectors):
        index = IVFIndex(vectors, seed=0)
        query = np.random.default_rng(2).normal(size=12)
        new_id = index.add(query)
        assert new_id == vectors.shape[0]
        assert len(index) == vectors.shape[0] + 1
        ids, distances = index.search(query, 1)
        assert ids[0] == new_id and distances[0] == 0.0

    def test_single_list_index_is_exact(self, vectors):
        index = IVFIndex(vectors, nlist=1, seed=0)
        query = np.random.default_rng(3).normal(size=12)
        ids, d = index.search(query, 9, nprobe=1)
        exact_ids, exact_d = exact_search(vectors, query, 9)
        assert np.array_equal(ids, exact_ids) and np.array_equal(d, exact_d)

    def test_deterministic_across_builds(self, vectors):
        a = IVFIndex(vectors, seed=0)
        b = IVFIndex(vectors, seed=0)
        query = np.random.default_rng(4).normal(size=12)
        assert np.array_equal(a.search(query, 8)[0], b.search(query, 8)[0])

    def test_validation(self, vectors, index):
        with pytest.raises(ConfigurationError):
            IVFIndex(vectors, nlist=0)
        with pytest.raises(ConfigurationError):
            IVFIndex(vectors, nlist=vectors.shape[0] + 1)
        with pytest.raises(ConfigurationError):
            index.search(vectors[0], 0)
        with pytest.raises(ConfigurationError):
            index.search(vectors[0], 3, nprobe=0)
        with pytest.raises(DataError):
            index.search(np.zeros(2), 3)
        with pytest.raises(DataError):
            index.add(np.zeros(2))
        with pytest.raises(DataError):
            IVFIndex(np.array([[np.nan, 0.0]]))


class TestRecallAtK:
    def test_full_probing_has_perfect_recall(self, index, vectors):
        assert recall_at_k(index, vectors[:25], 10, nprobe=index.nlist) == 1.0

    def test_recall_bounded_and_probing_helps(self, index, vectors):
        low = recall_at_k(index, vectors[:40], 10, nprobe=1)
        high = recall_at_k(index, vectors[:40], 10, nprobe=max(2, index.nlist // 2))
        assert 0.0 <= low <= 1.0
        assert low <= high <= 1.0

    def test_requires_queries(self, index):
        with pytest.raises(DataError):
            recall_at_k(index, np.empty((0, 12)), 5)
