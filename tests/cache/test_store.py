"""Tests for the cache stores (LRU tier, disk tier, facade, stats)."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, CacheStats, DiskCache, LRUCache
from repro.utils.exceptions import ConfigurationError


class TestCacheStats:
    def test_counters_and_hit_rate(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.record_miss()
        stats.record_hit()
        stats.record_hit()
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_reset_and_as_dict(self):
        stats = CacheStats(hits=3, misses=1, puts=2, evictions=1)
        snapshot = stats.as_dict()
        assert snapshot["hits"] == 3 and snapshot["evictions"] == 1
        stats.reset()
        assert stats.lookups == 0 and stats.puts == 0


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(max_entries=4)
        cache.put("x", 1.5)
        assert cache.get("x") == 1.5
        assert cache.get("missing") is None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.get("a")          # refresh "a" so "b" is the coldest entry
        cache.put("c", 3.0)
        assert cache.get("b") is None
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("a", 2.0)
        assert len(cache) == 1
        assert cache.get("a") == 2.0

    def test_arrays_are_isolated_from_callers(self):
        cache = LRUCache(max_entries=2)
        original = np.arange(4.0)
        cache.put("arr", original)
        original[0] = 99.0          # mutating the source must not reach the cache
        fetched = cache.get("arr")
        assert fetched[0] == 0.0
        fetched[1] = -1.0           # mutating a fetched copy must not either
        assert cache.get("arr")[1] == 1.0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            LRUCache(max_entries=0)


class TestDiskCache:
    def test_array_and_scalar_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        array = np.random.default_rng(0).random((3, 3))
        cache.put("sim:test:abc", array)
        cache.put("proxy:test:def", 0.75)
        assert np.array_equal(cache.get("sim:test:abc"), array)
        assert cache.get("proxy:test:def") == 0.75
        assert cache.get("unknown") is None

    def test_clear_removes_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", np.ones(2))
        cache.clear()
        assert cache.get("a") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", np.ones(2))
        next(tmp_path.glob("*.npy")).write_bytes(b"not a npy file")
        assert cache.get("a") is None


class TestArtifactCache:
    def test_get_or_compute_computes_once(self):
        cache = ArtifactCache(max_entries=8)
        calls = []

        def compute():
            calls.append(1)
            return np.ones(3)

        first = cache.get_or_compute("k", compute)
        second = cache.get_or_compute("k", compute)
        assert len(calls) == 1
        assert np.array_equal(first, second)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_disabled_cache_never_stores(self):
        cache = ArtifactCache(max_entries=8, enabled=False)
        cache.put("k", 1.0)
        assert cache.get("k") is None
        assert len(cache.memory) == 0

    def test_disk_tier_promotion(self, tmp_path):
        writer = ArtifactCache(max_entries=8, disk_dir=tmp_path)
        writer.put("k", np.arange(3.0))
        # A fresh process (new memory tier, same directory) hits via disk.
        reader = ArtifactCache(max_entries=8, disk_dir=tmp_path)
        value = reader.get("k")
        assert np.array_equal(value, np.arange(3.0))
        # The disk hit is promoted into the memory tier.
        assert "k" in reader.memory

    def test_stats_report_tiers(self, tmp_path):
        cache = ArtifactCache(max_entries=8, disk_dir=tmp_path)
        cache.put("k", 1.0)
        report = cache.stats_report()
        assert set(report) == {"memory", "disk"}
        assert report["memory"]["puts"] == 1


class TestDiskCacheConcurrency:
    def test_concurrent_same_key_puts_publish_atomically(self, tmp_path):
        """Racing writers (docs/caching.md#concurrency-guarantees) never
        corrupt an entry: readers always load one writer's complete array."""
        import threading

        cache = DiskCache(tmp_path)
        payloads = [np.full(64, float(i)) for i in range(8)]
        barrier = threading.Barrier(len(payloads), timeout=10)
        errors = []

        def writer(value):
            try:
                barrier.wait()
                cache.put("shared-key", value)
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        value = cache.get("shared-key")
        assert value is not None
        # The winning write is complete: all 64 entries equal one payload.
        assert any(np.array_equal(value, payload) for payload in payloads)
        # No temporary files leak.
        assert not list(tmp_path.glob("*.tmp-*"))


class TestEviction:
    def test_lru_evict_key(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1.0)
        assert cache.evict("a") is True
        assert cache.get("a") is None
        assert cache.evict("a") is False

    def test_lru_evict_matching(self):
        cache = LRUCache(max_entries=8)
        cache.put("sim:performance:k=5:abc123", 1.0)
        cache.put("dist:sim:performance:k=5:abc123", 2.0)
        cache.put("sim:performance:k=5:def456", 3.0)
        assert cache.evict_matching("abc123") == 2
        assert cache.get("sim:performance:k=5:def456") == 3.0
        assert cache.stats.evictions >= 2

    def test_disk_evict_key_and_matching(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("sim:k=5:abc123", np.ones(4))
        cache.put("meta:abc123", {"n": 1})
        cache.put("sim:k=5:def456", np.zeros(4))
        assert cache.evict("sim:k=5:abc123") is True
        assert cache.get("sim:k=5:abc123") is None
        assert cache.evict_matching("abc123") == 1  # the json entry
        assert cache.get("meta:abc123") is None
        assert cache.get("sim:k=5:def456") is not None

    def test_artifact_cache_evicts_all_tiers(self, tmp_path):
        cache = ArtifactCache(max_entries=8, disk_dir=tmp_path)
        cache.put("sim:abc123", np.ones(3))
        cache.put("sim:def456", np.ones(3))
        assert cache.evict_matching("abc123") == 1
        # Neither tier serves the evicted entry any more.
        assert cache.get("sim:abc123") is None
        assert cache.get("sim:def456") is not None
        assert cache.evict("sim:def456") is True
        assert cache.get("sim:def456") is None


class TestDiskTierEdgeCases:
    """Edge cases of the persistent tier under memmapped readers and damage."""

    def test_get_mmap_mode_returns_memmap(self, tmp_path):
        cache = DiskCache(tmp_path)
        payload = np.arange(6.0).reshape(2, 3)
        cache.put("sim:k=5:abc", payload)
        mapped = cache.get("sim:k=5:abc", mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(mapped, payload)
        # Default reads stay plain in-RAM arrays.
        assert not isinstance(cache.get("sim:k=5:abc"), np.memmap)

    def test_evict_while_reader_holds_memmap(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("sim:k=5:abc", np.full((4, 4), 2.5))
        reader = cache.get("sim:k=5:abc", mmap_mode="r")
        assert cache.evict("sim:k=5:abc") is True
        # POSIX unlink: the live mapping still reads the old bytes ...
        assert float(reader[3, 3]) == 2.5
        assert float(reader.sum()) == 40.0
        # ... while new lookups are misses until the entry is re-put.
        assert cache.get("sim:k=5:abc") is None
        cache.put("sim:k=5:abc", np.zeros((4, 4)))
        assert float(cache.get("sim:k=5:abc").sum()) == 0.0

    def test_evict_matching_while_reader_holds_memmap(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("sim:k=5:abc123", np.ones(8))
        reader = cache.get("sim:k=5:abc123", mmap_mode="r")
        assert cache.evict_matching("abc123") == 1
        assert float(reader.sum()) == 8.0
        assert cache.get("sim:k=5:abc123") is None

    def test_evict_matching_on_empty_disk_tier(self, tmp_path):
        cache = DiskCache(tmp_path / "never-written")
        assert cache.evict_matching("anything") == 0
        assert cache.stats.evictions == 0
        # Same through the facade with an empty disk directory.
        facade = ArtifactCache(max_entries=4, disk_dir=tmp_path / "empty")
        assert facade.evict_matching("anything") == 0

    def test_corrupted_file_recovery_on_get(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("sim:k=5:abc", np.ones(3))
        misses_before = cache.stats.misses
        path = next(tmp_path.glob("*.npy"))
        path.write_bytes(b"\x93NUMPY corrupted beyond repair")
        # The damaged entry reads as a miss (recorded), not an exception ...
        assert cache.get("sim:k=5:abc") is None
        assert cache.stats.misses == misses_before + 1
        # ... and the standard recompute-and-put cycle heals the slot.
        cache.put("sim:k=5:abc", np.full(3, 7.0))
        assert np.array_equal(cache.get("sim:k=5:abc"), np.full(3, 7.0))

    def test_corrupted_json_recovery_on_get(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("proxy:x", 0.5)
        next(tmp_path.glob("*.json")).write_text("{not json")
        assert cache.get("proxy:x") is None
        cache.put("proxy:x", 0.25)
        assert cache.get("proxy:x") == 0.25


class TestTempFileSweep:
    """Orphaned-writer cleanup: a killed publisher must never leak or corrupt."""

    @staticmethod
    def _dead_pid():
        """A pid guaranteed to name no live process (spawned, exited, reaped)."""
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_startup_sweep_removes_dead_writer_temp_files(self, tmp_path):
        dead = self._dead_pid()
        orphan = tmp_path / f"sim_k_5_abc.npy.tmp-{dead}-140210"
        orphan.write_bytes(b"half-written")
        cache = DiskCache(tmp_path)
        assert cache.swept_temp_files == 1
        assert not orphan.exists()

    def test_live_writer_temp_files_are_spared(self, tmp_path):
        import os

        ours = tmp_path / f"sim_k_5_abc.npy.tmp-{os.getpid()}-140210"
        ours.write_bytes(b"mid-publish")
        cache = DiskCache(tmp_path)
        assert cache.swept_temp_files == 0
        assert ours.exists()

    def test_non_temp_files_are_never_swept(self, tmp_path):
        dead = self._dead_pid()
        cache = DiskCache(tmp_path)
        cache.put("proxy:x", 0.5)
        published = list(tmp_path.glob("*.json"))
        stale = tmp_path / f"proxy_y.json.tmp-{dead}-9"
        stale.write_bytes(b"")
        assert DiskCache(tmp_path).swept_temp_files == 1
        assert all(path.exists() for path in published)

    def test_killed_writer_never_corrupts_reader(self, tmp_path):
        """The published value survives a writer killed mid-publish."""
        import numpy as np

        cache = DiskCache(tmp_path)
        cache.put("sim:k=5:abc", np.full(4, 2.0))
        path = next(tmp_path.glob("*.npy"))
        # A writer died after writing its temp file but before os.replace.
        dead = self._dead_pid()
        (tmp_path / f"{path.name}.tmp-{dead}-7").write_bytes(b"\x00garbage")
        reopened = DiskCache(tmp_path)
        assert reopened.swept_temp_files == 1
        assert np.array_equal(reopened.get("sim:k=5:abc"), np.full(4, 2.0))
