"""Tests for content fingerprints and cache-key construction."""

import numpy as np

from repro.cache import (
    distance_key,
    fingerprint_array,
    fingerprint_matrix,
    fingerprint_task,
    fingerprint_text,
    proxy_score_key,
    similarity_key,
    text_similarity_key,
)
from repro.core.performance import PerformanceMatrix


def _matrix(values, datasets=None, models=None):
    values = np.asarray(values, dtype=float)
    return PerformanceMatrix(
        dataset_names=datasets or [f"d{i}" for i in range(values.shape[0])],
        model_names=models or [f"m{j}" for j in range(values.shape[1])],
        values=values,
    )


class TestFingerprints:
    def test_array_fingerprint_is_content_based(self):
        a = np.arange(6.0).reshape(2, 3)
        assert fingerprint_array(a) == fingerprint_array(a.copy())
        assert fingerprint_array(a) == fingerprint_array(np.asfortranarray(a))
        changed = a.copy()
        changed[0, 0] += 1e-9
        assert fingerprint_array(a) != fingerprint_array(changed)

    def test_array_fingerprint_distinguishes_shape(self):
        flat = np.arange(6.0)
        assert fingerprint_array(flat) != fingerprint_array(flat.reshape(2, 3))

    def test_text_fingerprint_separates_fields(self):
        assert fingerprint_text("ab", "c") != fingerprint_text("a", "bc")

    def test_matrix_fingerprint_covers_names_and_values(self):
        base = _matrix([[0.1, 0.2], [0.3, 0.4]])
        same = _matrix([[0.1, 0.2], [0.3, 0.4]])
        assert fingerprint_matrix(base) == fingerprint_matrix(same)
        renamed = _matrix([[0.1, 0.2], [0.3, 0.4]], models=["x", "y"])
        assert fingerprint_matrix(base) != fingerprint_matrix(renamed)
        perturbed = _matrix([[0.1, 0.2], [0.3, 0.5]])
        assert fingerprint_matrix(base) != fingerprint_matrix(perturbed)

    def test_matrix_fingerprint_ignores_curves(self, nlp_matrix_small):
        stripped = PerformanceMatrix(
            dataset_names=list(nlp_matrix_small.dataset_names),
            model_names=list(nlp_matrix_small.model_names),
            values=nlp_matrix_small.values.copy(),
        )
        assert fingerprint_matrix(stripped) == fingerprint_matrix(nlp_matrix_small)

    def test_task_fingerprint_stable_and_data_sensitive(self, nlp_suite_small):
        task = nlp_suite_small.task("mnli")
        again = nlp_suite_small.task("mnli")
        other = nlp_suite_small.task("boolq")
        assert fingerprint_task(task) == fingerprint_task(again)
        assert fingerprint_task(task) != fingerprint_task(other)


class TestKeyConstructors:
    def test_similarity_key_encodes_parameters(self):
        matrix = _matrix([[0.1, 0.2], [0.3, 0.4]])
        assert similarity_key(matrix, top_k=5) != similarity_key(matrix, top_k=3)
        assert similarity_key(matrix, method="performance") != similarity_key(
            matrix, method="text"
        )

    def test_distance_key_derives_from_similarity_key(self):
        matrix = _matrix([[0.1, 0.2], [0.3, 0.4]])
        sim = similarity_key(matrix, top_k=5)
        assert distance_key(sim) == f"dist:{sim}"

    def test_text_similarity_key_order_and_content(self):
        assert text_similarity_key({"a": "x", "b": "y"}) != text_similarity_key(
            {"b": "y", "a": "x"}
        )
        assert text_similarity_key({"a": "x"}) != text_similarity_key({"a": "z"})

    def test_proxy_key_distinguishes_all_inputs(self):
        base = proxy_score_key("leep", "bert", "fp", split="train", max_samples=256)
        assert base != proxy_score_key("nce", "bert", "fp", split="train", max_samples=256)
        assert base != proxy_score_key("leep", "gpt", "fp", split="train", max_samples=256)
        assert base != proxy_score_key("leep", "bert", "fq", split="train", max_samples=256)
        assert base != proxy_score_key("leep", "bert", "fp", split="val", max_samples=256)
        assert base != proxy_score_key("leep", "bert", "fp", split="train", max_samples=128)
