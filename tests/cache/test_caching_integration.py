"""Integration tests: similarity/distance/proxy caching through the pipeline."""

import numpy as np

import repro.cache as cache_module
from repro.cache import ArtifactCache
from repro.cluster.distance import distance_matrix_for, similarity_to_distance
from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.similarity import performance_similarity_matrix
from repro.metrics.registry import CachedScorer, get_scorer


class TestSimilarityCaching:
    def test_second_invocation_is_served_from_cache(self, nlp_matrix_small):
        cache = ArtifactCache(max_entries=8)
        first = performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=cache)
        assert cache.stats.hits == 0 and cache.stats.misses == 1
        second = performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=cache)
        assert cache.stats.hits == 1
        assert np.array_equal(first, second)

    def test_different_top_k_is_a_different_entry(self, nlp_matrix_small):
        cache = ArtifactCache(max_entries=8)
        performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=cache)
        performance_similarity_matrix(nlp_matrix_small, top_k=3, cache=cache)
        assert cache.stats.hits == 0 and cache.stats.misses == 2

    def test_cache_false_bypasses_default(self, nlp_matrix_small):
        cache_module.clear_cache()
        stats = cache_module.get_cache().stats
        lookups_before = stats.lookups
        performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=False)
        assert stats.lookups == lookups_before

    def test_default_cache_round_trip(self, nlp_matrix_small):
        cache_module.clear_cache()
        stats = cache_module.get_cache().stats
        baseline_hits = stats.hits
        performance_similarity_matrix(nlp_matrix_small, top_k=7)
        performance_similarity_matrix(nlp_matrix_small, top_k=7)
        assert stats.hits == baseline_hits + 1

    def test_mutating_a_result_does_not_poison_the_cache(self, nlp_matrix_small):
        cache = ArtifactCache(max_entries=8)
        first = performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=cache)
        first[0, 1] = -123.0
        second = performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=cache)
        assert second[0, 1] != -123.0

    def test_chunked_and_single_block_share_one_cache_entry(self, nlp_matrix_small):
        # chunk_rows changes only the execution schedule, never the values,
        # so it must not leak into the cache key: a chunked computation and
        # a single-block one have to hit each other's entries.
        from repro.cache import similarity_key

        chunked_first = ArtifactCache(max_entries=8)
        chunked = performance_similarity_matrix(
            nlp_matrix_small, top_k=5, chunk_rows=2, cache=chunked_first
        )
        assert chunked_first.stats.misses == 1 and chunked_first.stats.puts == 1
        served = performance_similarity_matrix(
            nlp_matrix_small, top_k=5, cache=chunked_first
        )
        assert chunked_first.stats.hits == 1  # single-block call hit the chunked entry
        assert np.array_equal(chunked, served)

        single_first = ArtifactCache(max_entries=8)
        single = performance_similarity_matrix(
            nlp_matrix_small, top_k=5, cache=single_first
        )
        served_chunked = performance_similarity_matrix(
            nlp_matrix_small, top_k=5, chunk_rows=3, cache=single_first
        )
        assert single_first.stats.hits == 1  # chunked call hit the single entry
        assert np.array_equal(single, served_chunked)
        # Both schedules key under the same canonical similarity key.
        key = similarity_key(nlp_matrix_small, method="performance", top_k=5)
        assert chunked_first.get(key) is not None
        assert single_first.get(key) is not None


class TestDistanceCaching:
    def test_distance_served_from_cache_without_similarity_recompute(
        self, nlp_matrix_small
    ):
        cache = ArtifactCache(max_entries=8)
        first = distance_matrix_for(nlp_matrix_small, top_k=5, cache=cache)
        lookups_after_first = cache.stats.lookups
        second = distance_matrix_for(nlp_matrix_small, top_k=5, cache=cache)
        assert np.array_equal(first, second)
        # The second call resolves with a single lookup: the distance key.
        assert cache.stats.lookups == lookups_after_first + 1
        assert cache.stats.hits >= 1

    def test_distance_matches_direct_conversion(self, nlp_matrix_small):
        cache = ArtifactCache(max_entries=8)
        direct = similarity_to_distance(
            performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=False)
        )
        routed = distance_matrix_for(nlp_matrix_small, top_k=5, cache=cache)
        assert np.allclose(direct, routed, atol=1e-12)

    def test_custom_similarity_does_not_poison_canonical_entry(
        self, nlp_matrix_small
    ):
        cache = ArtifactCache(max_entries=8)
        n = len(nlp_matrix_small.model_names)
        custom = np.full((n, n), 0.5)
        np.fill_diagonal(custom, 1.0)
        custom_distance = distance_matrix_for(
            nlp_matrix_small, top_k=5, similarity=custom, cache=cache
        )
        # A precomputed similarity bypasses the cache entirely.
        assert cache.stats.lookups == 0 and cache.stats.puts == 0
        canonical = distance_matrix_for(nlp_matrix_small, top_k=5, cache=cache)
        expected = similarity_to_distance(
            performance_similarity_matrix(nlp_matrix_small, top_k=5, cache=False)
        )
        assert np.allclose(canonical, expected, atol=1e-12)
        assert not np.allclose(canonical, custom_distance)

    def test_clusterer_reuses_cached_artifacts(self, nlp_matrix_small, nlp_hub_small):
        cache = ArtifactCache(max_entries=8)
        clusterer = ModelClusterer(ClusteringConfig())
        first = clusterer.cluster(
            nlp_matrix_small, model_cards=nlp_hub_small.model_cards(), cache=cache
        )
        misses_after_first = cache.stats.misses
        second = clusterer.cluster(
            nlp_matrix_small, model_cards=nlp_hub_small.model_cards(), cache=cache
        )
        assert cache.stats.misses == misses_after_first  # everything was a hit
        assert np.array_equal(first.assignment.labels, second.assignment.labels)
        assert np.array_equal(first.similarity, second.similarity)


class TestProxyScoreCaching:
    def test_cached_scorer_hits_on_second_score(self, nlp_hub_small, nlp_suite_small):
        cache = ArtifactCache(max_entries=8)
        scorer = get_scorer("leep", cached=True, cache=cache)
        assert isinstance(scorer, CachedScorer)
        model = nlp_hub_small.get(nlp_hub_small.model_names[0])
        task = nlp_suite_small.task("mnli")
        first = scorer.score(model, task, max_samples=64)
        second = scorer.score(model, task, max_samples=64)
        assert first == second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_cached_scorer_matches_deterministic_plain_scorer(
        self, nlp_hub_small, nlp_suite_small
    ):
        # Without subsampling there is no randomness, so the cached wrapper
        # must reproduce the plain scorer bit-for-bit.
        model = nlp_hub_small.get(nlp_hub_small.model_names[0])
        task = nlp_suite_small.task("mnli")
        plain = get_scorer("leep").score(model, task, max_samples=None)
        cached = get_scorer("leep", cached=True, cache=ArtifactCache()).score(
            model, task, max_samples=None
        )
        assert plain == cached

    def test_distinct_models_do_not_collide(self, nlp_hub_small, nlp_suite_small):
        cache = ArtifactCache(max_entries=8)
        scorer = get_scorer("leep", cached=True, cache=cache)
        task = nlp_suite_small.task("mnli")
        name_a, name_b = nlp_hub_small.model_names[:2]
        score_a = scorer.score(nlp_hub_small.get(name_a), task, max_samples=64)
        score_b = scorer.score(nlp_hub_small.get(name_b), task, max_samples=64)
        assert cache.stats.misses == 2
        assert score_a != score_b

    def test_same_name_different_weights_do_not_collide(
        self, nlp_hub_small, nlp_suite_small
    ):
        # Two hubs built from different seeds carry identically named
        # checkpoints with different weights; their proxy scores must be
        # cached under different keys.
        from repro.zoo.hub import ModelHub

        other_hub = ModelHub(nlp_suite_small, seed=99).subset(
            nlp_hub_small.model_names
        )
        name = nlp_hub_small.model_names[0]
        cache = ArtifactCache(max_entries=8)
        scorer = get_scorer("leep", cached=True, cache=cache)
        task = nlp_suite_small.task("mnli")
        scorer.score(nlp_hub_small.get(name), task, max_samples=64)
        scorer.score(other_hub.get(name), task, max_samples=64)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_score_independent_of_cache_enablement(
        self, nlp_hub_small, nlp_suite_small
    ):
        # Disabling the cache must not change the number a CachedScorer
        # produces (subsampling is seeded from the key either way).
        model = nlp_hub_small.get(nlp_hub_small.model_names[0])
        task = nlp_suite_small.task("mnli")
        with_cache = get_scorer(
            "leep", cached=True, cache=ArtifactCache(max_entries=8)
        ).score(model, task, max_samples=32)
        without_cache = get_scorer("leep", cached=True, cache=False).score(
            model, task, max_samples=32
        )
        assert with_cache == without_cache
