"""Tests for the LEEP transferability score."""

import numpy as np
import pytest

from repro.metrics.leep import LeepScorer, leep_score
from repro.utils.exceptions import DataError


def one_hot(labels, num_classes):
    matrix = np.zeros((len(labels), num_classes))
    matrix[np.arange(len(labels)), labels] = 1.0
    return matrix


class TestLeepScore:
    def test_perfectly_aligned_posterior_is_near_zero(self):
        """If source classes map 1:1 to target labels, LEEP approaches 0."""
        labels = np.array([0, 1, 2, 0, 1, 2])
        posterior = one_hot(labels, 3) * 0.97 + 0.01
        score = leep_score(posterior, labels)
        assert score > -0.1

    def test_uninformative_posterior_equals_label_entropy(self):
        """A constant posterior reduces LEEP to -H(Y)."""
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=300)
        posterior = np.tile(np.array([0.5, 0.3, 0.2]), (300, 1))
        score = leep_score(posterior, labels)
        counts = np.bincount(labels, minlength=3) / 300
        entropy = -np.sum(counts[counts > 0] * np.log(counts[counts > 0]))
        assert np.isclose(score, -entropy, atol=1e-6)

    def test_score_is_non_positive(self):
        rng = np.random.default_rng(1)
        posterior = rng.dirichlet(np.ones(4), size=50)
        labels = rng.integers(0, 3, size=50)
        assert leep_score(posterior, labels) <= 1e-9

    def test_informative_beats_uninformative(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, size=200)
        informative = one_hot(labels, 2) * 0.8 + 0.1
        uninformative = rng.dirichlet(np.ones(2), size=200)
        assert leep_score(informative, labels) > leep_score(uninformative, labels)

    def test_permuted_source_labels_do_not_matter(self):
        """LEEP is invariant to relabelling the source classes."""
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 3, size=120)
        posterior = rng.dirichlet(np.ones(5), size=120)
        permutation = rng.permutation(5)
        assert np.isclose(
            leep_score(posterior, labels), leep_score(posterior[:, permutation], labels)
        )

    def test_rejects_invalid_posterior(self):
        with pytest.raises(DataError):
            leep_score(np.array([[0.5, 0.6]]), np.array([0]))

    def test_rejects_misaligned_labels(self):
        with pytest.raises(DataError):
            leep_score(np.array([[0.5, 0.5]]), np.array([0, 1]))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            leep_score(np.zeros((0, 2)), np.array([], dtype=int))


class TestLeepScorer:
    def test_scorer_on_models(self, nlp_hub_small, nlp_suite_small):
        """LEEP should rank a matched checkpoint above an out-of-domain one."""
        scorer = LeepScorer()
        task = nlp_suite_small.task("mnli")
        matched = scorer.score(nlp_hub_small.get("ishan/bert-base-uncased-mnli"), task)
        mismatched = scorer.score(
            nlp_hub_small.get("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi"), task
        )
        assert matched > mismatched

    def test_max_samples_subsampling(self, nlp_hub_small, nlp_suite_small):
        scorer = LeepScorer()
        task = nlp_suite_small.task("mnli")
        model = nlp_hub_small.get("bert-base-uncased")
        full = scorer.score(model, task)
        sub = scorer.score(model, task, max_samples=20, rng=np.random.default_rng(0))
        assert np.isfinite(full) and np.isfinite(sub)

    def test_unknown_split_rejected(self, nlp_hub_small, nlp_suite_small):
        with pytest.raises(DataError):
            LeepScorer().score(
                nlp_hub_small.get("bert-base-uncased"),
                nlp_suite_small.task("mnli"),
                split="dev",
            )
