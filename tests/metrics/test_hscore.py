"""Tests for the H-score transferability estimate."""

import numpy as np
import pytest

from repro.metrics.hscore import HScoreScorer, h_score
from repro.utils.exceptions import DataError


class TestHScore:
    def test_separated_classes_score_higher(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=200)
        centers = rng.normal(scale=3.0, size=(3, 6))
        separated = centers[labels] + rng.normal(size=(200, 6))
        mixed = rng.normal(size=(200, 6))
        assert h_score(separated, labels) > h_score(mixed, labels)

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(80, 5))
        labels = rng.integers(0, 2, size=80)
        assert h_score(features, labels) >= -1e-9

    def test_bounded_by_feature_dimension(self):
        """trace(cov^-1 cov_between) cannot exceed the feature dimension."""
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 4, size=300)
        centers = rng.normal(scale=5.0, size=(4, 6))
        features = centers[labels] + 0.1 * rng.normal(size=(300, 6))
        assert h_score(features, labels) <= 6.5

    def test_rejects_single_class(self):
        with pytest.raises(DataError):
            h_score(np.ones((10, 3)), np.zeros(10, dtype=int))

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            h_score(np.ones((10, 3)), np.zeros(4, dtype=int))


class TestHScoreScorer:
    def test_runs_on_models(self, nlp_hub_small, nlp_suite_small):
        scorer = HScoreScorer()
        value = scorer.score(nlp_hub_small.get("bert-base-uncased"), nlp_suite_small.task("mnli"))
        assert np.isfinite(value) and value >= 0
