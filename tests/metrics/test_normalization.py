"""Tests for score normalisation helpers."""

import numpy as np
import pytest

from repro.metrics.normalization import (
    min_max_normalize,
    normalize_score_dict,
    rank_normalize,
)
from repro.utils.exceptions import DataError


class TestMinMaxNormalize:
    def test_maps_to_unit_interval(self):
        out = min_max_normalize([-3.0, 0.0, 7.0])
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_preserves_ordering(self):
        values = [0.3, -1.2, 5.0, 2.0]
        out = min_max_normalize(values)
        assert np.array_equal(np.argsort(values), np.argsort(out))

    def test_constant_maps_to_ones(self):
        assert np.array_equal(min_max_normalize([2.0, 2.0, 2.0]), np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            min_max_normalize([])

    def test_rejects_non_finite(self):
        with pytest.raises(DataError):
            min_max_normalize([1.0, np.inf])


class TestRankNormalize:
    def test_unique_values(self):
        out = rank_normalize([10.0, 30.0, 20.0])
        assert np.allclose(out, [0.0, 1.0, 0.5])

    def test_ties_get_average_rank(self):
        out = rank_normalize([1.0, 1.0, 2.0])
        assert np.isclose(out[0], out[1])

    def test_single_value(self):
        assert np.array_equal(rank_normalize([5.0]), np.ones(1))


class TestNormalizeScoreDict:
    def test_minmax_preserves_keys(self):
        scores = {"a": -1.0, "b": 1.0}
        out = normalize_score_dict(scores)
        assert out["a"] == 0.0 and out["b"] == 1.0

    def test_rank_method(self):
        out = normalize_score_dict({"a": 5.0, "b": 1.0, "c": 3.0}, method="rank")
        assert out["a"] == 1.0 and out["b"] == 0.0

    def test_unknown_method(self):
        with pytest.raises(DataError):
            normalize_score_dict({"a": 1.0}, method="zscore")
