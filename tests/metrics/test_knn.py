"""Tests for the kNN transferability proxy."""

import numpy as np
import pytest

from repro.metrics.knn import KnnScorer, knn_transfer_accuracy
from repro.utils.exceptions import ConfigurationError, DataError


class TestKnnTransferAccuracy:
    def test_separable_clusters_score_high(self):
        rng = np.random.default_rng(0)
        labels = np.repeat([0, 1, 2], 40)
        centers = np.array([[0, 0], [10, 0], [0, 10]], dtype=float)
        features = centers[labels] + rng.normal(scale=0.5, size=(120, 2))
        assert knn_transfer_accuracy(features, labels, k=5) > 0.95

    def test_random_features_near_chance(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 4, size=200)
        features = rng.normal(size=(200, 8))
        accuracy = knn_transfer_accuracy(features, labels, k=5)
        assert accuracy < 0.5

    def test_result_in_unit_interval(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(30, 4))
        labels = rng.integers(0, 2, size=30)
        accuracy = knn_transfer_accuracy(features, labels, k=3)
        assert 0.0 <= accuracy <= 1.0

    def test_k_clamped_to_n_minus_one(self):
        features = np.array([[0.0], [0.1], [5.0], [5.1]])
        labels = np.array([0, 0, 1, 1])
        assert knn_transfer_accuracy(features, labels, k=100) >= 0.0

    def test_rejects_too_few_samples(self):
        with pytest.raises(DataError):
            knn_transfer_accuracy(np.ones((2, 2)), np.array([0, 1]))

    def test_rejects_invalid_k(self):
        with pytest.raises(ConfigurationError):
            knn_transfer_accuracy(np.ones((5, 2)), np.zeros(5, dtype=int), k=0)


class TestKnnScorer:
    def test_invalid_k_in_constructor(self):
        with pytest.raises(ConfigurationError):
            KnnScorer(k=0)

    def test_ranks_strong_model_higher(self, nlp_hub_small, nlp_suite_small):
        scorer = KnnScorer(k=5)
        task = nlp_suite_small.task("mnli")
        strong = scorer.score(nlp_hub_small.get("roberta-base"), task)
        weak = scorer.score(
            nlp_hub_small.get("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi"), task
        )
        assert strong > weak
