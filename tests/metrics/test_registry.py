"""Tests for the proxy-scorer registry."""

import numpy as np
import pytest

from repro.metrics.base import ProxyScorer
from repro.metrics.registry import available_scorers, get_scorer, register_scorer
from repro.utils.exceptions import ConfigurationError


class TestRegistry:
    def test_builtin_scorers_registered(self):
        names = available_scorers()
        for expected in ("leep", "nce", "logme", "hscore", "knn"):
            assert expected in names

    def test_get_scorer_returns_instances(self):
        leep_a = get_scorer("leep")
        leep_b = get_scorer("leep")
        assert leep_a is not leep_b
        assert leep_a.name == "leep"

    def test_unknown_scorer(self):
        with pytest.raises(ConfigurationError):
            get_scorer("task2vec")

    def test_register_custom_scorer(self):
        class ConstantScorer(ProxyScorer):
            name = "constant"
            uses_source_posterior = False

            def score_arrays(self, inputs, labels, *, num_classes):
                return 0.5

        register_scorer("constant-test", ConstantScorer, overwrite=True)
        assert "constant-test" in available_scorers()
        scorer = get_scorer("constant-test")
        assert scorer.score_arrays(np.ones((3, 2)), np.array([0, 1, 0]), num_classes=2) == 0.5

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scorer("leep", lambda: None)

    def test_correlation_with_ground_truth(self, nlp_hub_small, nlp_suite_small, fine_tuner):
        """LEEP should positively rank-correlate with actual fine-tuning accuracy.

        This is the property the coarse-recall phase relies on.
        """
        task = nlp_suite_small.task("mnli")
        scorer = get_scorer("leep")
        scores, accuracies = [], []
        for name in nlp_hub_small.model_names:
            model = nlp_hub_small.get(name)
            scores.append(scorer.score(model, task))
            accuracies.append(fine_tuner.fine_tune(model, task, epochs=3).final_test)
        score_ranks = np.argsort(np.argsort(scores))
        accuracy_ranks = np.argsort(np.argsort(accuracies))
        correlation = np.corrcoef(score_ranks, accuracy_ranks)[0, 1]
        assert correlation > 0.2
