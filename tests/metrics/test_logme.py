"""Tests for the LogME transferability score."""

import numpy as np
import pytest

from repro.metrics.logme import LogMeScorer, log_maximum_evidence
from repro.utils.exceptions import DataError


def make_features(rng, n=120, dim=10, informative=True, noise=0.5):
    labels = rng.integers(0, 3, size=n)
    if informative:
        centers = rng.normal(scale=2.0, size=(3, dim))
        features = centers[labels] + noise * rng.normal(size=(n, dim))
    else:
        features = rng.normal(size=(n, dim))
    return features, labels


class TestLogMe:
    def test_informative_features_score_higher(self):
        rng = np.random.default_rng(0)
        informative, labels = make_features(rng, informative=True)
        uninformative, _ = make_features(np.random.default_rng(1), informative=False)
        assert log_maximum_evidence(informative, labels) > log_maximum_evidence(
            uninformative, labels
        )

    def test_score_is_finite(self):
        rng = np.random.default_rng(2)
        features, labels = make_features(rng)
        assert np.isfinite(log_maximum_evidence(features, labels))

    def test_less_noise_scores_higher(self):
        labels = np.random.default_rng(3).integers(0, 3, size=150)
        centers = np.random.default_rng(4).normal(scale=2.0, size=(3, 8))
        clean = centers[labels] + 0.2 * np.random.default_rng(5).normal(size=(150, 8))
        noisy = centers[labels] + 2.0 * np.random.default_rng(6).normal(size=(150, 8))
        assert log_maximum_evidence(clean, labels) > log_maximum_evidence(noisy, labels)

    def test_rejects_single_class(self):
        with pytest.raises(DataError):
            log_maximum_evidence(np.ones((10, 3)), np.zeros(10, dtype=int))

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            log_maximum_evidence(np.ones((10, 3)), np.zeros(5, dtype=int))

    def test_rejects_1d_features(self):
        with pytest.raises(DataError):
            log_maximum_evidence(np.ones(10), np.zeros(10, dtype=int))


class TestLogMeScorer:
    def test_ranks_strong_model_higher(self, nlp_hub_small, nlp_suite_small):
        scorer = LogMeScorer()
        task = nlp_suite_small.task("mnli")
        strong = scorer.score(nlp_hub_small.get("roberta-base"), task)
        weak = scorer.score(
            nlp_hub_small.get("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi"), task
        )
        assert strong > weak
