"""Tests for the NCE transferability score."""

import numpy as np
import pytest

from repro.metrics.nce import NceScorer, nce_score
from repro.utils.exceptions import DataError


def one_hot(labels, num_classes):
    matrix = np.zeros((len(labels), num_classes))
    matrix[np.arange(len(labels)), labels] = 1.0
    return matrix


class TestNceScore:
    def test_perfect_alignment_is_zero(self):
        labels = np.array([0, 1, 2] * 10)
        posterior = one_hot(labels, 3)
        assert np.isclose(nce_score(posterior, labels), 0.0, atol=1e-9)

    def test_uninformative_prediction_equals_negative_entropy(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=1000)
        # Source model always predicts class 0 -> H(Y|Z) = H(Y).
        posterior = np.tile(np.array([0.9, 0.1]), (1000, 1))
        counts = np.bincount(labels) / 1000
        entropy = -np.sum(counts * np.log(counts))
        assert np.isclose(nce_score(posterior, labels), -entropy, atol=1e-6)

    def test_score_non_positive(self):
        rng = np.random.default_rng(1)
        posterior = rng.dirichlet(np.ones(4), size=100)
        labels = rng.integers(0, 3, size=100)
        assert nce_score(posterior, labels) <= 1e-12

    def test_more_informative_is_higher(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 3, size=300)
        informative = one_hot(labels, 3)
        noisy_labels = labels.copy()
        flip = rng.random(300) < 0.4
        noisy_labels[flip] = rng.integers(0, 3, size=int(flip.sum()))
        noisy = one_hot(noisy_labels, 3)
        assert nce_score(informative, labels) > nce_score(noisy, labels)

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            nce_score(np.zeros((0, 2)), np.array([], dtype=int))

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            nce_score(np.array([[1.0, 0.0]]), np.array([0, 1]))


class TestNceScorer:
    def test_ranks_matched_model_higher(self, nlp_hub_small, nlp_suite_small):
        scorer = NceScorer()
        task = nlp_suite_small.task("mnli")
        matched = scorer.score(nlp_hub_small.get("ishan/bert-base-uncased-mnli"), task)
        mismatched = scorer.score(
            nlp_hub_small.get("aliosm/sha3bor-metre-detector-arabertv2-base"), task
        )
        assert matched >= mismatched
