"""Tests for repro.core.config."""

import pytest

from repro.core.config import (
    ClusteringConfig,
    FineSelectionConfig,
    PipelineConfig,
    RecallConfig,
)
from repro.utils.exceptions import ConfigurationError


class TestClusteringConfig:
    def test_defaults(self):
        config = ClusteringConfig()
        assert config.method == "hierarchical"
        assert config.similarity == "performance"
        assert config.top_k == 5

    def test_kmeans_requires_num_clusters(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(method="kmeans")
        ClusteringConfig(method="kmeans", num_clusters=5)

    def test_invalid_method(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(method="dbscan")

    def test_invalid_similarity(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(similarity="embedding")

    def test_invalid_quantile(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(threshold_quantile=1.5)

    def test_invalid_top_k(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(top_k=0)


class TestRecallConfig:
    def test_defaults_match_paper(self):
        config = RecallConfig()
        assert config.proxy_score == "leep"
        assert config.top_k == 10
        assert config.proxy_epoch_cost == 0.5

    def test_invalid_top_k(self):
        with pytest.raises(ConfigurationError):
            RecallConfig(top_k=0)

    def test_invalid_max_samples(self):
        with pytest.raises(ConfigurationError):
            RecallConfig(max_proxy_samples=0)

    def test_invalid_epoch_cost(self):
        with pytest.raises(ConfigurationError):
            RecallConfig(proxy_epoch_cost=-1)


class TestFineSelectionConfig:
    def test_defaults(self):
        config = FineSelectionConfig()
        assert config.total_epochs == 5
        assert config.threshold == 0.0
        assert config.use_trend_filter

    def test_interval_cannot_exceed_budget(self):
        with pytest.raises(ConfigurationError):
            FineSelectionConfig(total_epochs=2, validation_interval=3)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            FineSelectionConfig(threshold=-0.1)

    def test_invalid_num_trends(self):
        with pytest.raises(ConfigurationError):
            FineSelectionConfig(num_trends=0)


class TestPipelineConfig:
    def test_for_modality_sets_epochs(self):
        nlp = PipelineConfig.for_modality("nlp")
        cv = PipelineConfig.for_modality("cv")
        assert nlp.offline_epochs == 5
        assert nlp.fine_selection.total_epochs == 5
        assert cv.offline_epochs == 4
        assert cv.fine_selection.total_epochs == 4

    def test_invalid_offline_epochs(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(offline_epochs=0)

    def test_default_subconfigs(self):
        config = PipelineConfig()
        assert isinstance(config.clustering, ClusteringConfig)
        assert isinstance(config.recall, RecallConfig)
