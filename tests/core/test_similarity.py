"""Tests for repro.core.similarity (Eq. 1 and the text baseline)."""

import numpy as np
import pytest

from repro.core.similarity import (
    pairwise_model_similarity,
    performance_similarity,
    performance_similarity_matrix,
    similarity_matrix_for,
    text_similarity_matrix,
)
from repro.utils.exceptions import ConfigurationError, DataError


class TestPerformanceSimilarity:
    def test_identical_vectors_give_one(self):
        vector = np.array([0.5, 0.6, 0.7])
        assert performance_similarity(vector, vector) == 1.0

    def test_known_value(self):
        a = np.array([0.5, 0.9, 0.4, 0.8])
        b = np.array([0.5, 0.5, 0.5, 0.5])
        # top-2 differences: 0.4 and 0.3 -> 1 - 0.35
        assert np.isclose(performance_similarity(a, b, top_k=2), 0.65)

    def test_uses_largest_differences(self):
        a = np.array([0.9, 0.5, 0.5, 0.5])
        b = np.array([0.1, 0.5, 0.5, 0.5])
        assert np.isclose(performance_similarity(a, b, top_k=1), 0.2)
        assert performance_similarity(a, b, top_k=4) > performance_similarity(a, b, top_k=1)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(6), rng.random(6)
        assert performance_similarity(a, b) == performance_similarity(b, a)

    def test_top_k_larger_than_dimension_clamped(self):
        a, b = np.array([0.3, 0.4]), np.array([0.5, 0.1])
        assert np.isfinite(performance_similarity(a, b, top_k=10))

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            performance_similarity(np.ones(3), np.ones(4))

    def test_rejects_invalid_top_k(self):
        with pytest.raises(ConfigurationError):
            performance_similarity(np.ones(3), np.ones(3), top_k=0)


class TestSimilarityMatrices:
    def test_performance_matrix_properties(self, nlp_matrix_small):
        similarity = performance_similarity_matrix(nlp_matrix_small, top_k=5)
        n = len(nlp_matrix_small.model_names)
        assert similarity.shape == (n, n)
        assert np.allclose(np.diag(similarity), 1.0)
        assert np.allclose(similarity, similarity.T)

    def test_sibling_models_more_similar_than_unrelated(self, nlp_matrix_small):
        sibling = pairwise_model_similarity(
            nlp_matrix_small, "Jeevesh8/bert_ft_qqp-68", "Jeevesh8/bert_ft_qqp-9"
        )
        unrelated = pairwise_model_similarity(
            nlp_matrix_small,
            "Jeevesh8/bert_ft_qqp-68",
            "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi",
        )
        assert sibling > unrelated

    def test_text_similarity_matrix(self, nlp_hub_small):
        cards = nlp_hub_small.model_cards()
        similarity = text_similarity_matrix(cards)
        assert similarity.shape == (len(cards), len(cards))
        assert np.allclose(np.diag(similarity), 1.0)
        assert similarity.min() >= 0.0

    def test_text_similarity_rejects_empty(self):
        with pytest.raises(DataError):
            text_similarity_matrix({})

    def test_dispatch_performance(self, nlp_matrix_small):
        out = similarity_matrix_for(nlp_matrix_small, method="performance")
        assert out.shape[0] == len(nlp_matrix_small.model_names)

    def test_dispatch_text_requires_cards(self, nlp_matrix_small):
        with pytest.raises(ConfigurationError):
            similarity_matrix_for(nlp_matrix_small, method="text")

    def test_dispatch_unknown_method(self, nlp_matrix_small):
        with pytest.raises(ConfigurationError):
            similarity_matrix_for(nlp_matrix_small, method="embedding")
