"""Tests for repro.core.similarity (Eq. 1 and the text baseline)."""

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    _performance_similarity_matrix_loop,
    pairwise_model_similarity,
    performance_similarity,
    performance_similarity_matrix,
    similarity_chunk_rows,
    similarity_matrix_for,
    text_similarity_matrix,
)
from repro.utils.exceptions import ConfigurationError, DataError


def _random_matrix(n, d, seed=0):
    rng = np.random.default_rng(seed)
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(d)],
        model_names=[f"m{j}" for j in range(n)],
        values=rng.random((d, n)),
    )


class TestPerformanceSimilarity:
    def test_identical_vectors_give_one(self):
        vector = np.array([0.5, 0.6, 0.7])
        assert performance_similarity(vector, vector) == 1.0

    def test_known_value(self):
        a = np.array([0.5, 0.9, 0.4, 0.8])
        b = np.array([0.5, 0.5, 0.5, 0.5])
        # top-2 differences: 0.4 and 0.3 -> 1 - 0.35
        assert np.isclose(performance_similarity(a, b, top_k=2), 0.65)

    def test_uses_largest_differences(self):
        a = np.array([0.9, 0.5, 0.5, 0.5])
        b = np.array([0.1, 0.5, 0.5, 0.5])
        assert np.isclose(performance_similarity(a, b, top_k=1), 0.2)
        assert performance_similarity(a, b, top_k=4) > performance_similarity(a, b, top_k=1)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(6), rng.random(6)
        assert performance_similarity(a, b) == performance_similarity(b, a)

    def test_top_k_larger_than_dimension_clamped(self):
        a, b = np.array([0.3, 0.4]), np.array([0.5, 0.1])
        assert np.isfinite(performance_similarity(a, b, top_k=10))

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            performance_similarity(np.ones(3), np.ones(4))

    def test_rejects_invalid_top_k(self):
        with pytest.raises(ConfigurationError):
            performance_similarity(np.ones(3), np.ones(3), top_k=0)


class TestSimilarityMatrices:
    def test_performance_matrix_properties(self, nlp_matrix_small):
        similarity = performance_similarity_matrix(nlp_matrix_small, top_k=5)
        n = len(nlp_matrix_small.model_names)
        assert similarity.shape == (n, n)
        assert np.allclose(np.diag(similarity), 1.0)
        assert np.allclose(similarity, similarity.T)

    def test_sibling_models_more_similar_than_unrelated(self, nlp_matrix_small):
        sibling = pairwise_model_similarity(
            nlp_matrix_small, "Jeevesh8/bert_ft_qqp-68", "Jeevesh8/bert_ft_qqp-9"
        )
        unrelated = pairwise_model_similarity(
            nlp_matrix_small,
            "Jeevesh8/bert_ft_qqp-68",
            "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi",
        )
        assert sibling > unrelated

    def test_text_similarity_matrix(self, nlp_hub_small):
        cards = nlp_hub_small.model_cards()
        similarity = text_similarity_matrix(cards)
        assert similarity.shape == (len(cards), len(cards))
        assert np.allclose(np.diag(similarity), 1.0)
        assert similarity.min() >= 0.0

    def test_text_similarity_rejects_empty(self):
        with pytest.raises(DataError):
            text_similarity_matrix({})

    def test_dispatch_performance(self, nlp_matrix_small):
        out = similarity_matrix_for(nlp_matrix_small, method="performance")
        assert out.shape[0] == len(nlp_matrix_small.model_names)

    def test_dispatch_text_requires_cards(self, nlp_matrix_small):
        with pytest.raises(ConfigurationError):
            similarity_matrix_for(nlp_matrix_small, method="text")

    def test_dispatch_unknown_method(self, nlp_matrix_small):
        with pytest.raises(ConfigurationError):
            similarity_matrix_for(nlp_matrix_small, method="embedding")

    def test_dispatch_text_rejects_missing_card(self, nlp_matrix_small, nlp_hub_small):
        cards = nlp_hub_small.model_cards()
        cards.pop(nlp_matrix_small.model_names[0])
        with pytest.raises(ConfigurationError, match="missing"):
            similarity_matrix_for(nlp_matrix_small, method="text", model_cards=cards)

    def test_dispatch_text_rejects_extra_card(self, nlp_matrix_small, nlp_hub_small):
        cards = nlp_hub_small.model_cards()
        cards["not-a-hub-model"] = "a stray model card"
        with pytest.raises(ConfigurationError, match="unexpected"):
            similarity_matrix_for(nlp_matrix_small, method="text", model_cards=cards)

    def test_dispatch_text_accepts_exact_card_set(self, nlp_matrix_small, nlp_hub_small):
        out = similarity_matrix_for(
            nlp_matrix_small, method="text", model_cards=nlp_hub_small.model_cards()
        )
        assert out.shape[0] == len(nlp_matrix_small.model_names)


class TestVectorizedSimilarityMatrix:
    """The vectorized engine must agree exactly with the pairwise loop."""

    @pytest.mark.parametrize(
        "n,d,top_k",
        [
            (2, 1, 1),
            (5, 3, 2),
            (12, 8, 5),
            (23, 40, 5),
            (16, 4, 9),     # top_k > d gets clamped to d
            (7, 1, 5),      # single benchmark dataset
        ],
    )
    def test_matches_reference_loop(self, n, d, top_k):
        matrix = _random_matrix(n, d, seed=n * 100 + d)
        fast = performance_similarity_matrix(matrix, top_k=top_k, cache=False)
        slow = _performance_similarity_matrix_loop(matrix, top_k=top_k)
        assert np.allclose(fast, slow, atol=1e-12, rtol=0.0)

    def test_single_model_matrix(self):
        matrix = _random_matrix(1, 6)
        out = performance_similarity_matrix(matrix, cache=False)
        assert out.shape == (1, 1) and out[0, 0] == 1.0

    def test_chunked_path_identical_to_single_shot(self):
        matrix = _random_matrix(17, 9, seed=3)
        whole = performance_similarity_matrix(matrix, top_k=4, cache=False)
        for rows in (1, 2, 5, 16, 17, 100):
            chunked = performance_similarity_matrix(
                matrix, top_k=4, cache=False, chunk_rows=rows
            )
            assert np.array_equal(whole, chunked)

    def test_properties_hold(self):
        matrix = _random_matrix(14, 6, seed=9)
        out = performance_similarity_matrix(matrix, cache=False)
        assert np.allclose(np.diag(out), 1.0)
        assert np.allclose(out, out.T)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_rejects_invalid_top_k(self):
        with pytest.raises(ConfigurationError):
            performance_similarity_matrix(_random_matrix(3, 3), top_k=0, cache=False)

    def test_rejects_invalid_chunk_rows(self):
        with pytest.raises(ConfigurationError):
            performance_similarity_matrix(
                _random_matrix(3, 3), chunk_rows=0, cache=False
            )

    def test_cache_hit_on_second_call(self):
        cache = ArtifactCache(max_entries=4)
        matrix = _random_matrix(6, 4)
        first = performance_similarity_matrix(matrix, cache=cache)
        second = performance_similarity_matrix(matrix, cache=cache)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert np.array_equal(first, second)

    def test_chunk_rows_heuristic(self):
        assert similarity_chunk_rows(800, 40, budget_bytes=64 * 1024**2) == 262
        assert similarity_chunk_rows(10, 5) == 10          # small fits whole
        assert similarity_chunk_rows(10**6, 10**6) == 1    # never below one row
