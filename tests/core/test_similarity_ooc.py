"""Unit tests of the out-of-core Eq. 1 similarity paths."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, similarity_key
from repro.core.config import SimilarityConfig
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    performance_similarity_matrix,
    performance_similarity_matrix_ooc,
    update_similarity_matrix,
    update_similarity_matrix_ooc,
)
from repro.store import MatrixStore
from repro.utils.exceptions import ConfigurationError, DataError


def _matrix(rng, n, d=7, prefix="m"):
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(d)],
        model_names=[f"{prefix}{j}" for j in range(n)],
        values=rng.uniform(0.0, 1.0, size=(d, n)),
    )


@pytest.fixture()
def store(tmp_path):
    return MatrixStore(tmp_path / "store")


@pytest.fixture()
def config(tmp_path):
    # Tiny in-flight budget: exercises multi-tile streaming on small zoos.
    return SimilarityConfig(
        max_bytes_in_flight=4096, spill_threshold_bytes=0, store_dir=None
    )


@pytest.mark.parametrize("n,d", [(1, 4), (2, 1), (7, 3), (23, 11), (40, 24)])
def test_ooc_matches_dense_bitwise(n, d, config, store):
    rng = np.random.default_rng(n * 100 + d)
    matrix = _matrix(rng, n, d)
    dense = performance_similarity_matrix(matrix, cache=False)
    spilled = performance_similarity_matrix_ooc(
        matrix, config=config, cache=False, store=store
    )
    assert isinstance(spilled, np.memmap)
    assert np.array_equal(dense, spilled)


def test_ooc_result_is_reused_from_store(config, store):
    rng = np.random.default_rng(0)
    matrix = _matrix(rng, 9)
    first = performance_similarity_matrix_ooc(
        matrix, config=config, cache=False, store=store
    )
    path = store.path_for(similarity_key(matrix, method="performance", top_k=5))
    mtime = path.stat().st_mtime_ns
    second = performance_similarity_matrix_ooc(
        matrix, config=config, cache=False, store=store
    )
    assert path.stat().st_mtime_ns == mtime  # served, not recomputed
    assert np.array_equal(first, second)


def test_ooc_write_through_from_memory_cache(config, store, monkeypatch):
    rng = np.random.default_rng(1)
    matrix = _matrix(rng, 6)
    cache = ArtifactCache(max_entries=4)
    dense = performance_similarity_matrix(matrix, cache=cache)
    # A warm dense entry under the shared key is spilled, not recomputed:
    # the Eq. 1 kernel must never run on this call.
    import repro.core.similarity as similarity_module

    def _boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("cache hit must not recompute")

    monkeypatch.setattr(similarity_module, "_similarity_into", _boom)
    result = performance_similarity_matrix_ooc(
        matrix, config=config, cache=cache, store=store
    )
    assert isinstance(result, np.memmap)
    assert np.array_equal(result, dense)
    assert store.open(similarity_key(matrix, method="performance", top_k=5)) is not None


def test_ooc_does_not_populate_memory_cache(config, store):
    rng = np.random.default_rng(2)
    matrix = _matrix(rng, 6)
    cache = ArtifactCache(max_entries=4)
    performance_similarity_matrix_ooc(matrix, config=config, cache=cache, store=store)
    assert cache.get(similarity_key(matrix, method="performance", top_k=5)) is None


@pytest.mark.parametrize("parallel", ["thread:4", "process:2"])
def test_parallel_tile_workers_write_identical_bytes(parallel, config, tmp_path):
    rng = np.random.default_rng(3)
    matrix = _matrix(rng, 31, 9)
    dense = performance_similarity_matrix(matrix, cache=False)
    spilled = performance_similarity_matrix_ooc(
        matrix,
        config=config,
        cache=False,
        store=MatrixStore(tmp_path / parallel.replace(":", "-")),
        parallel=parallel,
    )
    assert np.array_equal(dense, spilled)


def test_explicit_tile_rows_respected(store, tmp_path):
    rng = np.random.default_rng(4)
    matrix = _matrix(rng, 10)
    config = SimilarityConfig(spill_threshold_bytes=0, tile_rows=3)
    spilled = performance_similarity_matrix_ooc(
        matrix, config=config, cache=False, store=store
    )
    dense = performance_similarity_matrix(matrix, cache=False)
    assert np.array_equal(dense, spilled)


def test_ooc_rejects_bad_top_k(config, store):
    rng = np.random.default_rng(5)
    with pytest.raises(ConfigurationError):
        performance_similarity_matrix_ooc(
            _matrix(rng, 4), top_k=0, config=config, store=store
        )


def test_ooc_rejects_empty_vectors(config, store):
    matrix = PerformanceMatrix(
        dataset_names=[], model_names=["a", "b"], values=np.zeros((0, 2))
    )
    with pytest.raises(DataError):
        performance_similarity_matrix_ooc(
            matrix, config=config, cache=False, store=store
        )


# --------------------------------------------------------------------------- #
# incremental out-of-core updates
# --------------------------------------------------------------------------- #
def test_update_ooc_matches_dense_and_oracle(config, store):
    rng = np.random.default_rng(6)
    grown = _matrix(rng, 20)
    old = grown.submatrix(grown.model_names[:14])
    old_similarity = performance_similarity_matrix(old, cache=False)
    dense = update_similarity_matrix(old, old_similarity, grown, cache=False)
    spilled = update_similarity_matrix_ooc(
        old, old_similarity, grown, config=config, cache=False, store=store
    )
    oracle = performance_similarity_matrix(grown, cache=False)
    assert isinstance(spilled, np.memmap)
    assert np.array_equal(dense, spilled)
    assert np.array_equal(oracle, spilled)


def test_update_ooc_accepts_memmapped_old_similarity(config, store, tmp_path):
    rng = np.random.default_rng(7)
    grown = _matrix(rng, 16)
    old = grown.submatrix(grown.model_names[:11])
    old_spilled = performance_similarity_matrix_ooc(
        old, config=config, cache=False, store=MatrixStore(tmp_path / "old")
    )
    updated = update_similarity_matrix_ooc(
        old, old_spilled, grown, config=config, cache=False, store=store
    )
    oracle = performance_similarity_matrix(grown, cache=False)
    assert np.array_equal(oracle, updated)


def test_update_ooc_removal_only(config, store):
    rng = np.random.default_rng(8)
    grown = _matrix(rng, 15)
    shrunk = grown.submatrix(grown.model_names[:9])
    old_similarity = performance_similarity_matrix(grown, cache=False)
    updated = update_similarity_matrix_ooc(
        grown, old_similarity, shrunk, config=config, cache=False, store=store
    )
    oracle = performance_similarity_matrix(shrunk, cache=False)
    assert np.array_equal(oracle, updated)


def test_update_ooc_shares_dense_validation(config, store):
    rng = np.random.default_rng(9)
    old = _matrix(rng, 6)
    new = PerformanceMatrix(
        dataset_names=["other"],
        model_names=old.model_names,
        values=rng.uniform(size=(1, 6)),
    )
    old_similarity = performance_similarity_matrix(old, cache=False)
    with pytest.raises(DataError):
        update_similarity_matrix_ooc(
            old, old_similarity, new, config=config, cache=False, store=store
        )
