"""Tests for repro.core.performance (the performance matrix)."""

import numpy as np
import pytest

from repro.core.performance import PerformanceMatrix, build_performance_matrix
from repro.utils.exceptions import DataError
from repro.zoo.finetune import LearningCurve


class TestPerformanceMatrixStructure:
    def test_shape_matches_hub_and_suite(self, nlp_matrix_small, nlp_hub_small, nlp_suite_small):
        assert nlp_matrix_small.values.shape == (
            len(nlp_suite_small.benchmark_names),
            len(nlp_hub_small),
        )
        assert nlp_matrix_small.model_names == nlp_hub_small.model_names
        assert nlp_matrix_small.dataset_names == nlp_suite_small.benchmark_names

    def test_values_are_valid_accuracies(self, nlp_matrix_small):
        assert np.all(nlp_matrix_small.values >= 0.0)
        assert np.all(nlp_matrix_small.values <= 1.0)

    def test_curves_recorded_for_every_cell(self, nlp_matrix_small):
        expected = len(nlp_matrix_small.model_names) * len(nlp_matrix_small.dataset_names)
        assert len(nlp_matrix_small.curves) == expected

    def test_value_lookup_matches_curve(self, nlp_matrix_small):
        model = nlp_matrix_small.model_names[0]
        dataset = nlp_matrix_small.dataset_names[0]
        assert nlp_matrix_small.value(dataset, model) == pytest.approx(
            nlp_matrix_small.curve(model, dataset).final_test
        )

    def test_model_vector(self, nlp_matrix_small):
        vector = nlp_matrix_small.model_vector("bert-base-uncased")
        assert vector.shape == (len(nlp_matrix_small.dataset_names),)

    def test_average_accuracy(self, nlp_matrix_small):
        average = nlp_matrix_small.average_accuracy("bert-base-uncased")
        assert np.isclose(average, nlp_matrix_small.model_vector("bert-base-uncased").mean())

    def test_best_model_for(self, nlp_matrix_small):
        dataset = nlp_matrix_small.dataset_names[0]
        best = nlp_matrix_small.best_model_for(dataset)
        row = nlp_matrix_small.values[0]
        assert nlp_matrix_small.value(dataset, best) == row.max()

    def test_unknown_lookups_raise(self, nlp_matrix_small):
        with pytest.raises(DataError):
            nlp_matrix_small.value("nope", "bert-base-uncased")
        with pytest.raises(DataError):
            nlp_matrix_small.model_vector("nope")
        with pytest.raises(DataError):
            nlp_matrix_small.curve("bert-base-uncased", "nope")

    def test_curves_for_model(self, nlp_matrix_small):
        curves = nlp_matrix_small.curves_for_model("roberta-base")
        assert set(curves) == set(nlp_matrix_small.dataset_names)

    def test_submatrix(self, nlp_matrix_small):
        sub = nlp_matrix_small.submatrix(["bert-base-uncased", "roberta-base"])
        assert sub.model_names == ["bert-base-uncased", "roberta-base"]
        assert sub.values.shape[1] == 2
        assert np.allclose(
            sub.model_vector("roberta-base"),
            nlp_matrix_small.model_vector("roberta-base"),
        )

    def test_invalid_shape_rejected(self):
        with pytest.raises(DataError):
            PerformanceMatrix(["d1"], ["m1", "m2"], np.zeros((2, 2)))


class TestSerialization:
    def test_json_round_trip(self, nlp_matrix_small):
        restored = PerformanceMatrix.from_json(nlp_matrix_small.to_json())
        assert restored.model_names == nlp_matrix_small.model_names
        assert restored.dataset_names == nlp_matrix_small.dataset_names
        assert np.allclose(restored.values, nlp_matrix_small.values)
        model = nlp_matrix_small.model_names[0]
        dataset = nlp_matrix_small.dataset_names[0]
        assert restored.curve(model, dataset).val_accuracy == nlp_matrix_small.curve(
            model, dataset
        ).val_accuracy

    def test_from_dict_without_curves(self):
        matrix = PerformanceMatrix.from_dict(
            {
                "dataset_names": ["d1"],
                "model_names": ["m1"],
                "values": [[0.5]],
            }
        )
        assert matrix.value("d1", "m1") == 0.5


class TestBuilder:
    def test_strong_models_have_higher_average(self, nlp_matrix_small):
        strong = nlp_matrix_small.average_accuracy("roberta-base")
        weak = nlp_matrix_small.average_accuracy(
            "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi"
        )
        assert strong > weak

    def test_subsampled_training_fraction(self, nlp_hub_small, nlp_suite_small, fine_tuner):
        matrix = build_performance_matrix(
            nlp_hub_small.subset(["bert-base-uncased"]),
            nlp_suite_small,
            fine_tuner=fine_tuner,
            epochs=1,
            train_fraction=0.5,
            benchmark_names=["sst2"],
        )
        assert matrix.values.shape == (1, 1)

    def test_benchmark_names_filter(self, nlp_hub_small, nlp_suite_small, fine_tuner):
        matrix = build_performance_matrix(
            nlp_hub_small.subset(["bert-base-uncased", "roberta-base"]),
            nlp_suite_small,
            fine_tuner=fine_tuner,
            epochs=1,
            benchmark_names=["sst2", "cola"],
        )
        assert matrix.dataset_names == ["sst2", "cola"]
        assert matrix.epochs == 1
