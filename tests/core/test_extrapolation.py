"""Unit tests for the speculative early-stopping layer (curve bounds).

The integration-level guarantees (exact-mode bitwise identity, honest
accounting, crash/resume prune replay) live in ``tests/property/`` and
``tests/faultinject/``; this module pins the pure math down on synthetic
curves where every number is hand-checkable: the upper-bound intersection,
the monotone floor, the slack, the prune bar, and the cohort-extra cadence
that keeps pruning from changing the fate of kept arms.
"""

import pytest

from repro.core.config import FineSelectionConfig
from repro.core.extrapolation import (
    CurveExtrapolator,
    ExtrapolationConfig,
    max_remaining_gain,
    prune_payload,
    resolve_extrapolation,
)
from repro.core.plan import SelectionPlan
from repro.core.selection import FineSelection, SuccessiveHalving
from repro.utils.exceptions import ConfigurationError
from repro.zoo.finetune import LearningCurve

pytestmark = pytest.mark.extrapolation


def curve(name, vals, tests=None):
    return LearningCurve(
        "model", name, val_accuracy=list(vals),
        test_accuracy=list(tests if tests is not None else vals),
    )


class FakeMatrix:
    """curves_for_model stand-in: model name -> {dataset: LearningCurve}."""

    def __init__(self, curves_by_model):
        self._curves = curves_by_model

    def curves_for_model(self, model):
        return self._curves.get(model, {})


class FakeView:
    def __init__(self, val):
        self._val = val

    def validation_accuracy(self):
        return self._val


#: Offline histories with an obvious pecking order: ``leader`` converges
#: high, ``riser`` starts low but historically gains a lot, ``doomed``
#: plateaus low with nothing left to gain.
CURVES = {
    "leader": {
        "a": curve("a", [0.80, 0.86, 0.90]),
        "b": curve("b", [0.78, 0.85, 0.89]),
    },
    "riser": {
        "a": curve("a", [0.50, 0.80, 0.95]),
        "b": curve("b", [0.52, 0.82, 0.96]),
    },
    "doomed": {
        "a": curve("a", [0.30, 0.31, 0.32]),
        "b": curve("b", [0.29, 0.30, 0.31]),
    },
}


class TestConfig:
    def test_defaults_are_exact_mode(self):
        config = ExtrapolationConfig()
        assert config.enabled is False

    @pytest.mark.parametrize(
        "kwargs", [{"min_stages": 0}, {"slack": -0.1}, {"num_trends": 0}]
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExtrapolationConfig(**kwargs)

    def test_fingerprint_is_stable_and_knob_sensitive(self):
        assert (
            ExtrapolationConfig().fingerprint()
            == ExtrapolationConfig().fingerprint()
        )
        assert (
            ExtrapolationConfig(slack=0.05).fingerprint()
            != ExtrapolationConfig().fingerprint()
        )

    def test_resolve_extrapolation(self):
        assert resolve_extrapolation(None) is None
        assert resolve_extrapolation(True).enabled is True
        assert resolve_extrapolation(False).enabled is False
        config = ExtrapolationConfig(enabled=True, slack=0.3)
        assert resolve_extrapolation(config) is config
        with pytest.raises(ConfigurationError):
            resolve_extrapolation("yes")


class TestMaxRemainingGain:
    def test_rising_curve_reports_future_gain(self):
        gain = max_remaining_gain({"a": curve("a", [0.5, 0.8, 0.95])}, 1)
        assert gain == pytest.approx(0.45)

    def test_gain_shrinks_as_the_stage_advances(self):
        curves = {"a": curve("a", [0.5, 0.8, 0.95])}
        gains = [max_remaining_gain(curves, stage) for stage in (1, 2, 3)]
        assert gains == sorted(gains, reverse=True)
        assert gains[-1] == 0.0

    def test_flat_and_declining_curves_clip_at_zero(self):
        assert max_remaining_gain({"a": curve("a", [0.6, 0.6, 0.6])}, 1) == 0.0
        assert max_remaining_gain({"a": curve("a", [0.9, 0.7, 0.5])}, 1) == 0.0

    def test_takes_the_max_over_curves(self):
        curves = {
            "flat": curve("flat", [0.6, 0.6]),
            "rising": curve("rising", [0.4, 0.7]),
        }
        assert max_remaining_gain(curves, 1) == pytest.approx(0.3)

    def test_stage_beyond_curve_length_contributes_nothing(self):
        assert max_remaining_gain({"a": curve("a", [0.5, 0.9])}, 10) == 0.0

    def test_empty_curves_ignored(self):
        assert max_remaining_gain({"a": curve("a", [])}, 1) == 0.0


class TestCurveBound:
    def make(self, slack=0.0):
        return CurveExtrapolator(
            FakeMatrix(CURVES),
            config=ExtrapolationConfig(enabled=True, slack=slack, num_trends=2),
        )

    def test_bound_is_intersection_plus_slack(self):
        # doomed at 0.30 after 1 epoch: the trend ceiling (~0.315, the mean
        # final test of its plateau trends) and the gain cap (0.30 + 0.02)
        # are both far below the leader; the bound takes the tighter one.
        bound = self.make(slack=0.01).bound("doomed", 0.30, stage_epoch=1)
        assert bound.model == "doomed"
        assert bound.upper_bound < 0.40
        assert bound.upper_bound >= 0.30 + 0.01

    def test_bound_floors_at_observed_value(self):
        # An arm observed far above anything its history predicts must not
        # be bounded below what it already banked (monotone bound).
        bound = self.make(slack=0.0).bound("doomed", 0.95, stage_epoch=1)
        assert bound.upper_bound >= 0.95

    def test_slack_is_additive(self):
        tight = self.make(slack=0.0).bound("doomed", 0.30, stage_epoch=1)
        padded = self.make(slack=0.05).bound("doomed", 0.30, stage_epoch=1)
        assert padded.upper_bound == pytest.approx(tight.upper_bound + 0.05)

    def test_gain_cap_limits_an_optimistic_trend(self):
        # riser's trends predict ~0.955 from a 0.5 reading, but at the last
        # recorded epoch the remaining gain is zero — the cap wins.
        bound = self.make(slack=0.0).bound("riser", 0.50, stage_epoch=3)
        assert bound.upper_bound <= 0.50 + 1e-9

    def test_no_curves_means_infinite_bound(self):
        bound = self.make().bound("unknown-model", 0.10, stage_epoch=1)
        assert bound.upper_bound == float("inf")
        assert bound.predicted_final == pytest.approx(0.10)

    def test_bound_is_deterministic(self):
        extrapolator = self.make(slack=0.01)
        first = extrapolator.bound("riser", 0.51, stage_epoch=1)
        second = extrapolator.bound("riser", 0.51, stage_epoch=1)
        assert first == second


def make_policy(extrapolation, **config_kwargs):
    """A FineSelection over the synthetic matrix (hub untouched by pruning)."""
    policy = FineSelection(
        hub=None,
        matrix=FakeMatrix(CURVES),
        config=FineSelectionConfig(
            total_epochs=3, validation_interval=1, num_trends=2, **config_kwargs
        ),
        extrapolation=extrapolation,
    )
    return policy


class TestPruneBeforeStage:
    VIEWS = {
        "leader": FakeView(0.86),
        "riser": FakeView(0.55),
        "doomed": FakeView(0.31),
    }
    SCHEDULE = [1, 1, 1]

    def prune(self, policy, surviving=("leader", "riser", "doomed"), stage=1):
        return policy.prune_before_stage(
            stage, list(surviving), self.VIEWS, self.SCHEDULE
        )

    def test_disabled_or_absent_config_never_prunes(self):
        for extrapolation in (None, ExtrapolationConfig(enabled=False)):
            kept, pruned = self.prune(make_policy(extrapolation))
            assert kept == ["leader", "riser", "doomed"]
            assert pruned == {}

    def test_prunes_the_dominated_arm_only(self):
        kept, pruned = self.prune(
            make_policy(ExtrapolationConfig(enabled=True, num_trends=2))
        )
        # doomed's ceiling (~0.33) is below the leader's trajectory; riser's
        # history promises ~0.95 and survives.
        assert kept == ["leader", "riser"]
        assert set(pruned) == {"doomed"}
        record = pruned["doomed"]
        assert record["leader"] == "leader"
        assert record["upper_bound"] < record["leader_predicted"]
        assert record["epochs_saved"] == 2  # budget 3, pruned after epoch 1

    def test_leader_is_always_kept(self):
        kept, _ = self.prune(
            make_policy(ExtrapolationConfig(enabled=True, num_trends=2)),
            surviving=["doomed", "leader"],
        )
        assert "leader" in kept

    def test_min_stages_defers_pruning(self):
        policy = make_policy(
            ExtrapolationConfig(enabled=True, min_stages=2, num_trends=2)
        )
        kept, pruned = self.prune(policy, stage=1)
        assert pruned == {}
        kept, pruned = self.prune(policy, stage=2)
        # By epoch 2 even riser's remaining-gain cap has fallen below the
        # leader's trajectory; both dominated arms go.
        assert "doomed" in pruned

    def test_single_survivor_is_untouched(self):
        policy = make_policy(ExtrapolationConfig(enabled=True, num_trends=2))
        kept, pruned = self.prune(policy, surviving=["doomed"])
        assert kept == ["doomed"] and pruned == {}

    def test_huge_slack_prunes_nothing(self):
        policy = make_policy(
            ExtrapolationConfig(enabled=True, slack=1.0, num_trends=2)
        )
        _, pruned = self.prune(policy)
        assert pruned == {}

    def test_arm_without_curves_survives(self):
        views = dict(self.VIEWS, mystery=FakeView(0.05))
        policy = make_policy(ExtrapolationConfig(enabled=True, num_trends=2))
        kept, pruned = policy.prune_before_stage(
            1, ["leader", "mystery"], views, self.SCHEDULE
        )
        assert kept == ["leader", "mystery"]
        assert pruned == {}

    def test_prune_set_is_deterministic(self):
        policy = make_policy(ExtrapolationConfig(enabled=True, num_trends=2))
        assert self.prune(policy) == self.prune(policy)


class TestCohortExtra:
    """Pruned arms keep holding their bottom-ranked halving slots."""

    def plan_stub(self, candidates=10, pruned=(), stage_index=1):
        class Stub:
            pass

        stub = Stub()
        stub.candidates = [f"m{i}" for i in range(candidates)]
        stub.pruned = {name: {} for name in pruned}
        stub.stage_index = stage_index
        return stub

    def test_zero_without_prunes(self):
        assert SelectionPlan._cohort_extra(self.plan_stub(), 5) == 0

    def test_refills_the_exact_cadence(self):
        # Exact halving over 10 candidates enters stage 1 with 5 arms; two
        # were pruned, three are live -> two phantom slots.
        stub = self.plan_stub(pruned=("x", "y"))
        assert SelectionPlan._cohort_extra(stub, 3) == 2

    def test_never_exceeds_the_exact_cohort(self):
        # Live arms already fill the exact cadence: nothing to add.
        stub = self.plan_stub(pruned=("x", "y"))
        assert SelectionPlan._cohort_extra(stub, 5) == 0

    def test_deep_stages_shrink_the_cohort(self):
        stub = self.plan_stub(pruned=("x",), stage_index=3)
        # Exact cohort at stage 3 is max(1, 10 >> 3) = 1; one live arm
        # already fills it.
        assert SelectionPlan._cohort_extra(stub, 1) == 0

    def test_halving_keep_limit_follows_the_exact_cadence(self):
        policy = SuccessiveHalving(hub=None)
        validations = {f"m{i}": 0.9 - 0.1 * i for i in range(4)}
        exact_kept, _ = policy.filter_stage(0, list(validations), validations)
        assert len(exact_kept) == 2
        # Two arms pruned speculatively: the two live survivors of the same
        # exact cohort must both be kept (keep-limit 8//2=4 > live 2), not
        # re-halved down to one.
        live = dict(list(validations.items())[:2])
        kept, record = policy.filter_stage(0, list(live), live, cohort_extra=6)
        assert kept == list(live)
        assert record.removed_by_halving == []


class TestPrunePayload:
    def test_aggregates_records(self):
        payload = prune_payload(
            {
                "a": {"epochs_saved": 2, "upper_bound": 0.5},
                "b": {"epochs_saved": 3, "upper_bound": 0.4},
            }
        )
        assert payload["epochs_saved"] == 5.0
        assert set(payload["pruned"]) == {"a", "b"}

    def test_empty(self):
        assert prune_payload({}) == {"pruned": {}, "epochs_saved": 0.0}
