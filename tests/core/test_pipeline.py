"""Tests for the end-to-end two-phase pipeline."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.utils.exceptions import SelectionError


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, nlp_matrix_small, nlp_clustering_small, test_pipeline_config):
    return OfflineArtifacts(
        hub=nlp_hub_small,
        suite=nlp_suite_small,
        matrix=nlp_matrix_small,
        clustering=nlp_clustering_small,
        config=test_pipeline_config,
    )


@pytest.fixture(scope="module")
def selector(artifacts, fine_tuner):
    return TwoPhaseSelector(artifacts, fine_tuner=fine_tuner)


class TestOfflineArtifacts:
    def test_build_from_hub(self, nlp_hub_small, nlp_suite_small, fine_tuner, test_pipeline_config):
        small_hub = nlp_hub_small.subset(nlp_hub_small.model_names[:4])
        artifacts = OfflineArtifacts.build(
            small_hub, nlp_suite_small, config=test_pipeline_config, fine_tuner=fine_tuner
        )
        assert artifacts.matrix.model_names == small_hub.model_names
        assert artifacts.clustering.assignment.num_clusters >= 1


class TestTwoPhaseSelector:
    def test_select_by_name(self, selector, nlp_hub_small, test_pipeline_config):
        result = selector.select("mnli", top_k=5)
        assert result.selected_model in nlp_hub_small.model_names
        assert result.selected_model in result.recall.recalled_models
        assert 0.0 <= result.selected_accuracy <= 1.0
        # Total cost: proxy inference + fine-tuning epochs, well below brute force.
        brute_force_cost = len(nlp_hub_small) * test_pipeline_config.fine_selection.total_epochs
        assert result.total_cost < brute_force_cost

    def test_select_by_task_object(self, selector, nlp_suite_small):
        task = nlp_suite_small.task("boolq")
        result = selector.select(task, top_k=4)
        assert result.target_name == "boolq"
        assert len(result.recall.recalled_models) == 4

    def test_unknown_target_rejected(self, selector):
        with pytest.raises(SelectionError):
            selector.select("imagenet")

    def test_recall_only(self, selector):
        recall = selector.recall_only("mnli", top_k=3)
        assert len(recall.recalled_models) == 3

    def test_cluster_summary(self, selector, nlp_hub_small):
        summary = selector.cluster_summary()
        assert summary["num_models"] == len(nlp_hub_small)

    def test_results_reproducible(self, artifacts, fine_tuner):
        a = TwoPhaseSelector(artifacts, fine_tuner=fine_tuner).select("mnli", top_k=5)
        b = TwoPhaseSelector(artifacts, fine_tuner=fine_tuner).select("mnli", top_k=5)
        assert a.selected_model == b.selected_model
        assert a.recall.recalled_models == b.recall.recalled_models
        assert a.total_cost == b.total_cost
