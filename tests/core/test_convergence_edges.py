"""Edge cases of the Eq. 5/6 trend machinery the extrapolation layer leans on.

The speculative early-stopping bound (:mod:`repro.core.extrapolation`)
calls the trend miner on whatever offline curves exist — including
degenerate shapes a healthy benchmark run rarely produces: a single trend,
tied match distances, curves shorter than the requested stage, and
perfectly flat curves.  Each case must stay deterministic, because prune
decisions derived from these predictions are replayed bitwise on
crash/resume.
"""

import pytest

from repro.core.convergence import ConvergenceTrend, ConvergenceTrendMiner, TrendSet
from repro.utils.exceptions import DataError
from repro.zoo.finetune import LearningCurve

pytestmark = pytest.mark.extrapolation


def curve(name, vals, tests=None):
    return LearningCurve(
        "m", name, val_accuracy=list(vals),
        test_accuracy=list(tests if tests is not None else vals),
    )


class TestSingleTrend:
    def test_single_dataset_yields_single_trend(self):
        trend_set = ConvergenceTrendMiner(num_trends=4).mine(
            "m", {"only": curve("only", [0.5, 0.7], [0.5, 0.8])}, stage=1
        )
        assert len(trend_set.trends) == 1
        assert trend_set.trends[0].dataset_names == ("only",)

    def test_single_trend_predicts_its_mean_for_any_reading(self):
        trend_set = TrendSet(
            model_name="m",
            stage=1,
            trends=[ConvergenceTrend(0, 0.5, 0.75, ("a", "b"))],
        )
        for reading in (0.0, 0.5, 1.0):
            assert trend_set.predict(reading) == 0.75

    def test_requested_trends_above_dataset_count_clamp(self):
        curves = {"a": curve("a", [0.2]), "b": curve("b", [0.9])}
        trend_set = ConvergenceTrendMiner(num_trends=16).mine("m", curves, stage=1)
        assert len(trend_set.trends) == 2


class TestTiedMatchDistances:
    def make_trend_set(self):
        return TrendSet(
            model_name="m",
            stage=1,
            trends=[
                ConvergenceTrend(0, 0.40, 0.45, ("low",)),
                ConvergenceTrend(1, 0.60, 0.90, ("high",)),
            ],
        )

    def test_equidistant_reading_breaks_ties_to_the_first_trend(self):
        # 0.50 is exactly 0.10 from both trends; min() keeps the first of
        # the list, which mining sorts by ascending validation accuracy —
        # so ties deterministically resolve to the *lower* trend.
        trend_set = self.make_trend_set()
        matched = trend_set.match(0.50)
        assert matched is trend_set.trends[0]
        assert trend_set.predict(0.50) == 0.45

    def test_tie_break_is_stable_across_calls(self):
        trend_set = self.make_trend_set()
        assert all(trend_set.match(0.50) is trend_set.trends[0] for _ in range(5))

    def test_mined_trends_are_sorted_so_the_tie_rule_is_meaningful(self):
        curves = {
            "low0": curve("low0", [0.40]), "low1": curve("low1", [0.40]),
            "high0": curve("high0", [0.60]), "high1": curve("high1", [0.60]),
        }
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", curves, stage=1)
        vals = [trend.val_accuracy for trend in trend_set.trends]
        assert vals == sorted(vals)
        assert trend_set.match(0.50) is trend_set.trends[0]


class TestShortCurves:
    def test_stage_beyond_length_clamps_to_the_last_epoch(self):
        short = curve("short", [0.3, 0.6])
        assert short.val_at(99) == short.val_at(2)

    def test_mining_past_every_curve_matches_mining_at_the_end(self):
        curves = {
            "a": curve("a", [0.2, 0.4]),
            "b": curve("b", [0.7, 0.8]),
        }
        miner = ConvergenceTrendMiner(num_trends=2)
        at_end = miner.mine("m", curves, stage=2)
        beyond = miner.mine("m", curves, stage=50)
        assert [t.val_accuracy for t in beyond.trends] == [
            t.val_accuracy for t in at_end.trends
        ]
        assert [t.test_accuracy for t in beyond.trends] == [
            t.test_accuracy for t in at_end.trends
        ]

    def test_mixed_lengths_cluster_on_clamped_readings(self):
        curves = {
            "long": curve("long", [0.1, 0.5, 0.9]),
            "short": curve("short", [0.85]),
        }
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", curves, stage=3)
        # At stage 3 the short curve reads its (only) epoch, 0.85 — close
        # to the long curve's 0.9, but still two separable values.
        labels = trend_set.trend_labels()
        assert set(labels) == {"long", "short"}

    def test_empty_curve_raises(self):
        with pytest.raises(DataError):
            curve("empty", []).val_at(1)


class TestFlatCurves:
    def test_identical_flat_curves_collapse_to_one_trend(self):
        curves = {f"d{i}": curve(f"d{i}", [0.5, 0.5, 0.5]) for i in range(6)}
        trend_set = ConvergenceTrendMiner(num_trends=4).mine("m", curves, stage=2)
        assert len(trend_set.trends) == 1
        assert trend_set.trends[0].val_accuracy == 0.5
        assert trend_set.trends[0].size == 6

    def test_flat_curve_prediction_is_exact(self):
        curves = {f"d{i}": curve(f"d{i}", [0.5], [0.62]) for i in range(3)}
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", curves, stage=1)
        assert trend_set.predict(0.5) == pytest.approx(0.62)

    def test_near_flat_values_do_not_crash_kmeans(self):
        curves = {
            f"d{i}": curve(f"d{i}", [0.5 + 1e-12 * i]) for i in range(4)
        }
        trend_set = ConvergenceTrendMiner(num_trends=3).mine("m", curves, stage=1)
        assert 1 <= len(trend_set.trends) <= 3
