"""Tests for the batched multi-task selection engine."""

import pytest

from repro.core.batch import BatchedSelectionRunner, BatchSelectionReport
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.results import aggregate_epoch_accounting
from repro.utils.exceptions import SelectionError


@pytest.fixture(scope="module")
def nlp_artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def batch_report(nlp_artifacts, nlp_suite_small):
    runner = BatchedSelectionRunner(nlp_artifacts)
    return runner.run(nlp_suite_small.target_names)


class TestBatchedSelectionRunner:
    def test_one_result_per_target_in_order(self, batch_report, nlp_suite_small):
        assert batch_report.target_names == list(nlp_suite_small.target_names)
        for name in nlp_suite_small.target_names:
            result = batch_report.result_for(name)
            assert result.target_name == name
            assert result.selected_model in result.recall.recalled_models

    def test_matches_single_task_selector(self, nlp_artifacts, batch_report):
        selector = TwoPhaseSelector(nlp_artifacts)
        for name in batch_report.target_names:
            single = selector.select(name)
            batched = batch_report.result_for(name)
            assert single.selected_model == batched.selected_model
            assert single.selection.runtime_epochs == batched.selection.runtime_epochs
            assert single.recall.epoch_cost == batched.recall.epoch_cost
            assert single.total_cost == batched.total_cost

    def test_epoch_accounting_lands_on_selection_records(self, batch_report):
        for result in batch_report.results.values():
            assert result.selection.extra_epoch_cost == result.recall.epoch_cost
            assert result.selection.total_cost == (
                result.selection.runtime_epochs + result.recall.epoch_cost
            )

    def test_totals_sum_per_task_records(self, batch_report):
        totals = batch_report.totals()
        selections = batch_report.selection_results()
        assert totals["num_tasks"] == len(selections)
        assert totals["runtime_epochs"] == sum(s.runtime_epochs for s in selections)
        assert totals["extra_epoch_cost"] == sum(s.extra_epoch_cost for s in selections)
        assert totals["total_cost"] == pytest.approx(
            totals["runtime_epochs"] + totals["extra_epoch_cost"]
        )

    def test_summary_includes_mean_accuracy(self, batch_report):
        summary = batch_report.summary()
        accuracies = [r.selected_accuracy for r in batch_report.results.values()]
        assert summary["mean_selected_accuracy"] == pytest.approx(
            sum(accuracies) / len(accuracies)
        )

    def test_accepts_task_objects_and_top_k(self, nlp_artifacts, nlp_suite_small):
        runner = BatchedSelectionRunner(nlp_artifacts)
        task = nlp_suite_small.task("mnli")
        report = runner.run([task], top_k=3)
        assert report.target_names == ["mnli"]
        assert len(report.result_for("mnli").recall.recalled_models) == 3

    def test_rejects_empty_batch(self, nlp_artifacts):
        with pytest.raises(SelectionError):
            BatchedSelectionRunner(nlp_artifacts).run([])

    def test_rejects_duplicate_targets(self, nlp_artifacts):
        with pytest.raises(SelectionError, match="duplicate"):
            BatchedSelectionRunner(nlp_artifacts).run(["mnli", "mnli"])

    def test_rejects_unknown_target(self, nlp_artifacts):
        with pytest.raises(SelectionError, match="unknown target"):
            BatchedSelectionRunner(nlp_artifacts).run(["no-such-dataset"])

    def test_report_rejects_unknown_target(self, batch_report):
        with pytest.raises(SelectionError):
            batch_report.result_for("no-such-dataset")

    def test_from_hub_builds_offline_artifacts(
        self, nlp_hub_small, nlp_suite_small, test_pipeline_config
    ):
        runner = BatchedSelectionRunner.from_hub(
            nlp_hub_small, nlp_suite_small, config=test_pipeline_config
        )
        report = runner.run(["boolq"])
        assert set(report.selected_models()) == {"boolq"}


class TestTwoPhaseSelectorSelectMany:
    def test_select_many_matches_batch_runner(self, nlp_artifacts, nlp_suite_small):
        selector = TwoPhaseSelector(nlp_artifacts)
        report = selector.select_many(nlp_suite_small.target_names)
        assert isinstance(report, BatchSelectionReport)
        for name in nlp_suite_small.target_names:
            assert report.result_for(name).selected_model == selector.select(
                name
            ).selected_model


class TestAggregateEpochAccounting:
    def test_empty_iterable(self):
        totals = aggregate_epoch_accounting([])
        assert totals == {
            "num_tasks": 0.0,
            "runtime_epochs": 0.0,
            "extra_epoch_cost": 0.0,
            "total_cost": 0.0,
        }
