"""Tests for convergence-trend mining (Eq. 5/6)."""

import numpy as np
import pytest

from repro.core.convergence import (
    ConvergenceTrend,
    ConvergenceTrendMiner,
    TrendSet,
    leave_one_out_prediction_error,
    random_trend_labels,
)
from repro.utils.exceptions import DataError, SelectionError
from repro.zoo.finetune import LearningCurve


def make_curves():
    """Synthetic benchmark curves with two obvious groups (high/low plateau)."""
    curves = {}
    for index in range(4):
        curves[f"easy{index}"] = LearningCurve(
            "model", f"easy{index}",
            val_accuracy=[0.7 + 0.01 * index, 0.85, 0.9],
            test_accuracy=[0.7, 0.85, 0.9 + 0.01 * index],
        )
    for index in range(4):
        curves[f"hard{index}"] = LearningCurve(
            "model", f"hard{index}",
            val_accuracy=[0.3 + 0.01 * index, 0.4, 0.45],
            test_accuracy=[0.3, 0.4, 0.45 + 0.01 * index],
        )
    return curves


class TestTrendMining:
    def test_two_groups_recovered(self):
        miner = ConvergenceTrendMiner(num_trends=2)
        trend_set = miner.mine("model", make_curves(), stage=1)
        assert len(trend_set.trends) == 2
        labels = trend_set.trend_labels()
        easy_labels = {labels[f"easy{i}"] for i in range(4)}
        hard_labels = {labels[f"hard{i}"] for i in range(4)}
        assert len(easy_labels) == 1 and len(hard_labels) == 1
        assert easy_labels != hard_labels

    def test_trends_sorted_by_validation(self):
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", make_curves(), stage=1)
        vals = [trend.val_accuracy for trend in trend_set.trends]
        assert vals == sorted(vals)

    def test_num_trends_clamped_to_datasets(self):
        curves = {name: curve for name, curve in list(make_curves().items())[:3]}
        trend_set = ConvergenceTrendMiner(num_trends=10).mine("m", curves, stage=1)
        assert len(trend_set.trends) <= 3

    def test_identical_values_collapse_to_one_trend(self):
        curves = {
            f"d{i}": LearningCurve("m", f"d{i}", val_accuracy=[0.5], test_accuracy=[0.6])
            for i in range(5)
        }
        trend_set = ConvergenceTrendMiner(num_trends=3).mine("m", curves, stage=1)
        assert len(trend_set.trends) == 1

    def test_stage_beyond_curve_length_clamps(self):
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", make_curves(), stage=99)
        assert len(trend_set.trends) == 2

    def test_empty_curves_rejected(self):
        with pytest.raises(SelectionError):
            ConvergenceTrendMiner().mine("m", {}, stage=1)

    def test_invalid_stage_rejected(self):
        with pytest.raises(SelectionError):
            ConvergenceTrendMiner().mine("m", make_curves(), stage=0)

    def test_invalid_num_trends(self):
        with pytest.raises(SelectionError):
            ConvergenceTrendMiner(num_trends=0)


class TestMatchingAndPrediction:
    def test_match_returns_closest_trend(self):
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", make_curves(), stage=1)
        high = trend_set.match(0.72)
        low = trend_set.match(0.31)
        assert high.val_accuracy > low.val_accuracy

    def test_predict_uses_trend_mean_test(self):
        trend_set = ConvergenceTrendMiner(num_trends=2).mine("m", make_curves(), stage=1)
        assert trend_set.predict(0.72) > 0.8
        assert trend_set.predict(0.31) < 0.6

    def test_predict_final_accuracy_wrapper(self):
        miner = ConvergenceTrendMiner(num_trends=2)
        prediction = miner.predict_final_accuracy("m", make_curves(), 0.72, stage=1)
        assert prediction > 0.8

    def test_trend_set_requires_trends(self):
        with pytest.raises(DataError):
            TrendSet(model_name="m", stage=1, trends=[])

    def test_trend_size(self):
        trend = ConvergenceTrend(0, 0.5, 0.6, ("a", "b"))
        assert trend.size == 2


class TestRealCurves:
    def test_mining_on_matrix_curves(self, nlp_matrix_small):
        """Trend mining on real offline curves produces usable predictions."""
        model = "bert-base-uncased"
        curves = nlp_matrix_small.curves_for_model(model)
        miner = ConvergenceTrendMiner(num_trends=3)
        trend_set = miner.mine(model, curves, stage=1)
        prediction = trend_set.predict(0.8)
        assert 0.0 <= prediction <= 1.0

    def test_leave_one_out_beats_global_mean_on_synthetic_groups(self):
        errors = leave_one_out_prediction_error(
            make_curves(), ConvergenceTrendMiner(num_trends=2), "m", stage=1
        )
        assert errors["trend_prediction_error"] < errors["global_mean_error"]

    def test_leave_one_out_requires_enough_datasets(self):
        curves = dict(list(make_curves().items())[:2])
        with pytest.raises(SelectionError):
            leave_one_out_prediction_error(curves, ConvergenceTrendMiner(), "m")


class TestRandomTrendLabels:
    def test_labels_within_range(self):
        labels = random_trend_labels(["a", "b", "c"], 2, np.random.default_rng(0))
        assert set(labels) == {"a", "b", "c"}
        assert all(0 <= value < 2 for value in labels.values())

    def test_invalid_num_trends(self):
        with pytest.raises(SelectionError):
            random_trend_labels(["a"], 0, np.random.default_rng(0))
