"""Tests for the selection algorithms (BF, SH, FS / Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import FineSelectionConfig
from repro.core.selection import BruteForceSelection, FineSelection, SuccessiveHalving
from repro.utils.exceptions import SelectionError

CONFIG = FineSelectionConfig(total_epochs=3)


@pytest.fixture(scope="module")
def candidates(nlp_hub_small):
    return list(nlp_hub_small.model_names[:8])


@pytest.fixture(scope="module")
def mnli_task(nlp_suite_small):
    return nlp_suite_small.task("mnli")


class TestBruteForce:
    def test_runtime_is_models_times_epochs(self, nlp_hub_small, fine_tuner, candidates, mnli_task):
        result = BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        assert result.runtime_epochs == len(candidates) * CONFIG.total_epochs
        assert result.method == "brute_force"

    def test_selects_best_validation_model(self, nlp_hub_small, fine_tuner, candidates, mnli_task):
        result = BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        validations = result.stages[0].validation_accuracy
        assert validations[result.selected_model] == max(validations.values())

    def test_final_accuracies_cover_all_candidates(
        self, nlp_hub_small, fine_tuner, candidates, mnli_task
    ):
        result = BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        assert set(result.final_accuracies) == set(candidates)

    def test_empty_candidates_rejected(self, nlp_hub_small, fine_tuner, mnli_task):
        with pytest.raises(SelectionError):
            BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run([], mnli_task)

    def test_unknown_candidate_rejected(self, nlp_hub_small, fine_tuner, mnli_task):
        with pytest.raises(SelectionError):
            BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run(
                ["not-a-model"], mnli_task
            )


class TestSuccessiveHalving:
    def test_runtime_matches_halving_schedule(
        self, nlp_hub_small, fine_tuner, candidates, mnli_task
    ):
        result = SuccessiveHalving(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        # 8 models, 3 stages of 1 epoch: 8 + 4 + 2 = 14 epochs.
        assert result.runtime_epochs == 14
        assert result.method == "successive_halving"

    def test_paper_epoch_counts(self, nlp_hub_small, fine_tuner, nlp_suite_small):
        """With 10 models and 5 stages the SH schedule costs 19 epochs (Table V)."""
        config = FineSelectionConfig(total_epochs=5)
        candidates = nlp_hub_small.model_names[:10]
        result = SuccessiveHalving(nlp_hub_small, fine_tuner, config=config).run(
            candidates, nlp_suite_small.task("boolq")
        )
        assert result.runtime_epochs == 19

    def test_survivors_halve_each_stage(self, nlp_hub_small, fine_tuner, candidates, mnli_task):
        result = SuccessiveHalving(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        sizes = [len(stage.surviving_models) for stage in result.stages]
        assert sizes == [4, 2, 1]

    def test_single_candidate(self, nlp_hub_small, fine_tuner, mnli_task):
        result = SuccessiveHalving(nlp_hub_small, fine_tuner, config=CONFIG).run(
            ["bert-base-uncased"], mnli_task
        )
        assert result.selected_model == "bert-base-uncased"
        assert result.runtime_epochs == CONFIG.total_epochs

    def test_selected_model_cheaper_than_brute_force(
        self, nlp_hub_small, fine_tuner, candidates, mnli_task
    ):
        sh = SuccessiveHalving(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        bf = BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        assert sh.runtime_epochs < bf.runtime_epochs
        # speedup_over(other) = other.cost / self.cost, so the cheaper SH run
        # reports a speedup > 1 over brute force and vice versa.
        assert sh.speedup_over(bf) > 1.0
        assert bf.speedup_over(sh) < 1.0


class TestFineSelection:
    def test_never_slower_than_successive_halving(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=CONFIG
        ).run(candidates, mnli_task)
        sh = SuccessiveHalving(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        assert fs.runtime_epochs <= sh.runtime_epochs
        assert fs.method == "fine_selection"

    def test_winner_fully_trained(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=CONFIG
        ).run(candidates, mnli_task)
        # The selected model participates in every stage, so it trains for the
        # full epoch budget.
        assert all(
            fs.selected_model in stage.surviving_models for stage in fs.stages
        )

    def test_selected_accuracy_close_to_best_candidate(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=CONFIG
        ).run(candidates, mnli_task)
        bf = BruteForceSelection(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        best_accuracy = max(bf.final_accuracies.values())
        assert fs.selected_accuracy >= best_accuracy - 0.15

    def test_trend_filter_can_remove_more_than_half(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=CONFIG
        ).run(candidates, mnli_task)
        first_stage = fs.stages[0]
        removed = len(first_stage.removed_by_trend) + len(first_stage.removed_by_halving)
        assert removed >= len(candidates) // 2

    def test_threshold_monotone_runtime(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        runtimes = []
        for threshold in (0.0, 0.5):
            config = FineSelectionConfig(total_epochs=3, threshold=threshold)
            fs = FineSelection(
                nlp_hub_small, nlp_matrix_small, fine_tuner, config=config
            ).run(candidates, mnli_task)
            runtimes.append(fs.runtime_epochs)
        assert runtimes[0] <= runtimes[1]

    def test_disabling_trend_filter_matches_successive_halving_runtime(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        config = FineSelectionConfig(total_epochs=3, use_trend_filter=False)
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=config
        ).run(candidates, mnli_task)
        sh = SuccessiveHalving(nlp_hub_small, fine_tuner, config=CONFIG).run(
            candidates, mnli_task
        )
        assert fs.runtime_epochs == sh.runtime_epochs

    def test_predictions_recorded_per_stage(
        self, nlp_hub_small, nlp_matrix_small, fine_tuner, candidates, mnli_task
    ):
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=CONFIG
        ).run(candidates, mnli_task)
        first_stage = fs.stages[0]
        assert set(first_stage.predicted_accuracy) == set(candidates)
        assert all(0.0 <= v <= 1.0 for v in first_stage.predicted_accuracy.values())

    def test_single_candidate(self, nlp_hub_small, nlp_matrix_small, fine_tuner, mnli_task):
        fs = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner, config=CONFIG
        ).run(["roberta-base"], mnli_task)
        assert fs.selected_model == "roberta-base"
        assert fs.runtime_epochs == CONFIG.total_epochs
