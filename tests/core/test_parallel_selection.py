"""Cross-backend equivalence: parallel selection must equal serial bitwise.

The parallel subsystem's core guarantee (docs/parallelism.md) is that the
serial, thread and process executors return identical results at every
granularity — proxy scoring, stage training, batched fan-out.  These tests
pin that guarantee on the reduced session fixtures.
"""

import pytest

from repro.core.batch import BatchedSelectionRunner, build_phase_engines
from repro.core.config import RecallConfig
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.recall import CoarseRecall
from repro.core.selection import FineSelection, SuccessiveHalving
from repro.parallel import get_executor

BACKENDS = ["serial", "thread:4", "process:4"]


@pytest.fixture(scope="module")
def nlp_artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


def _recall_result(nlp_hub_small, nlp_matrix_small, nlp_clustering_small, task, parallel):
    recall = CoarseRecall(
        nlp_hub_small,
        nlp_matrix_small,
        nlp_clustering_small,
        config=RecallConfig(top_k=5),
        executor=get_executor(parallel),
    )
    return recall.recall(task)


class TestRecallAcrossBackends:
    @pytest.mark.parametrize("parallel", BACKENDS[1:])
    def test_recall_identical_to_serial(
        self, nlp_hub_small, nlp_matrix_small, nlp_clustering_small, nlp_suite_small, parallel
    ):
        task = nlp_suite_small.task("mnli")
        reference = _recall_result(
            nlp_hub_small, nlp_matrix_small, nlp_clustering_small, task, None
        )
        result = _recall_result(
            nlp_hub_small, nlp_matrix_small, nlp_clustering_small, task, parallel
        )
        assert result.recalled_models == reference.recalled_models
        assert result.recall_scores == reference.recall_scores
        assert result.raw_proxy_scores == reference.raw_proxy_scores
        assert result.epoch_cost == reference.epoch_cost


class TestSelectionAcrossBackends:
    @pytest.mark.parametrize("parallel", BACKENDS[1:])
    def test_fine_selection_identical_to_serial(
        self, nlp_hub_small, nlp_matrix_small, nlp_suite_small, fine_tuner, parallel
    ):
        task = nlp_suite_small.task("mnli")
        candidates = nlp_hub_small.model_names[:6]
        reference = FineSelection(
            nlp_hub_small, nlp_matrix_small, fine_tuner
        ).run(candidates, task)
        result = FineSelection(
            nlp_hub_small,
            nlp_matrix_small,
            fine_tuner,
            executor=get_executor(parallel),
        ).run(candidates, task)
        assert result.selected_model == reference.selected_model
        assert result.selected_accuracy == reference.selected_accuracy
        assert result.runtime_epochs == reference.runtime_epochs
        assert result.final_accuracies == reference.final_accuracies
        assert [s.validation_accuracy for s in result.stages] == [
            s.validation_accuracy for s in reference.stages
        ]

    def test_successive_halving_parallel_matches_serial(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        task = nlp_suite_small.task("boolq")
        candidates = nlp_hub_small.model_names[:4]
        reference = SuccessiveHalving(nlp_hub_small, fine_tuner).run(candidates, task)
        result = SuccessiveHalving(
            nlp_hub_small, fine_tuner, executor=get_executor("thread:2")
        ).run(candidates, task)
        assert result.selected_model == reference.selected_model
        assert result.final_accuracies == reference.final_accuracies


class TestBatchAcrossBackends:
    @pytest.fixture(scope="class")
    def serial_report(self, nlp_artifacts, nlp_suite_small):
        runner = BatchedSelectionRunner(nlp_artifacts, parallel="serial")
        return runner.run(nlp_suite_small.target_names)

    @pytest.mark.parametrize("parallel", BACKENDS[1:])
    def test_batch_identical_to_serial(
        self, nlp_artifacts, nlp_suite_small, serial_report, parallel
    ):
        runner = BatchedSelectionRunner(nlp_artifacts, parallel=parallel)
        report = runner.run(nlp_suite_small.target_names)
        assert report.target_names == serial_report.target_names
        for name in report.target_names:
            result = report.result_for(name)
            reference = serial_report.result_for(name)
            assert result.selected_model == reference.selected_model
            assert result.selected_accuracy == reference.selected_accuracy
            assert result.selection.runtime_epochs == reference.selection.runtime_epochs
            assert result.selection.final_accuracies == reference.selection.final_accuracies
            assert result.recall.recall_scores == reference.recall.recall_scores
            assert result.total_cost == reference.total_cost

    def test_selector_parallel_override(self, nlp_artifacts, nlp_suite_small):
        serial = TwoPhaseSelector(nlp_artifacts).select("mnli")
        parallel = TwoPhaseSelector(nlp_artifacts, parallel="thread:4").select("mnli")
        assert parallel.selected_model == serial.selected_model
        assert parallel.selection.final_accuracies == serial.selection.final_accuracies
        assert parallel.total_cost == serial.total_cost

    def test_engines_share_executor(self, nlp_artifacts, fine_tuner):
        executor = get_executor("thread:2")
        recall, fine_selection = build_phase_engines(
            nlp_artifacts, fine_tuner, parallel=executor
        )
        assert recall._executor is executor
        assert fine_selection._executor is executor
