"""Tests for the coarse-recall phase (Eq. 2-4)."""

import numpy as np
import pytest

from repro.core.config import RecallConfig
from repro.core.recall import CoarseRecall, RandomRecall
from repro.utils.exceptions import SelectionError


@pytest.fixture(scope="module")
def recall(nlp_hub_small, nlp_matrix_small, nlp_clustering_small):
    return CoarseRecall(
        nlp_hub_small,
        nlp_matrix_small,
        nlp_clustering_small,
        config=RecallConfig(top_k=5),
    )


@pytest.fixture(scope="module")
def mnli_result(recall, nlp_suite_small):
    return recall.recall(nlp_suite_small.task("mnli"))


class TestCoarseRecall:
    def test_returns_requested_number_of_models(self, mnli_result):
        assert len(mnli_result.recalled_models) == 5

    def test_all_models_scored(self, mnli_result, nlp_hub_small):
        assert set(mnli_result.recall_scores) == set(nlp_hub_small.model_names)

    def test_recalled_are_top_scoring(self, mnli_result):
        scores = mnli_result.recall_scores
        recalled = mnli_result.recalled_models
        threshold = min(scores[name] for name in recalled)
        not_recalled = [name for name in scores if name not in recalled]
        assert all(scores[name] <= threshold + 1e-12 for name in not_recalled)

    def test_recalled_ordered_by_score(self, mnli_result):
        scores = [mnli_result.recall_scores[name] for name in mnli_result.recalled_models]
        assert scores == sorted(scores, reverse=True)

    def test_scores_are_non_negative(self, mnli_result):
        assert all(value >= 0 for value in mnli_result.recall_scores.values())

    def test_proxy_only_computed_for_representatives(
        self, mnli_result, nlp_clustering_small
    ):
        representatives = set(nlp_clustering_small.representatives.values())
        assert set(mnli_result.raw_proxy_scores) == representatives

    def test_epoch_cost_accounting(self, mnli_result, nlp_clustering_small):
        expected = 0.5 * len(set(nlp_clustering_small.representatives.values()))
        assert mnli_result.epoch_cost == pytest.approx(expected)

    def test_recall_quality_beats_random(
        self, recall, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        """The recalled set must contain better models than a random draw (Fig. 5)."""
        task = nlp_suite_small.task("mnli")
        truth = {
            name: fine_tuner.fine_tune(nlp_hub_small.get(name), task, epochs=3).final_test
            for name in nlp_hub_small.model_names
        }
        recalled = recall.recall(task, top_k=5).recalled_models
        coarse_avg = np.mean([truth[name] for name in recalled])
        repository_avg = np.mean(list(truth.values()))
        assert coarse_avg > repository_avg

    def test_top_k_larger_than_repository(self, recall, nlp_suite_small, nlp_hub_small):
        result = recall.recall(nlp_suite_small.task("mnli"), top_k=100)
        assert len(result.recalled_models) == len(nlp_hub_small)

    def test_invalid_top_k(self, recall, nlp_suite_small):
        with pytest.raises(SelectionError):
            recall.recall(nlp_suite_small.task("mnli"), top_k=0)

    def test_rank_of(self, mnli_result):
        top = mnli_result.top_model
        assert mnli_result.rank_of(top) == 0
        assert mnli_result.rank_of("not-a-model") is None

    def test_matrix_must_cover_hub(self, nlp_hub_small, nlp_matrix_small, nlp_clustering_small):
        partial_matrix = nlp_matrix_small.submatrix(nlp_matrix_small.model_names[:3])
        with pytest.raises(SelectionError):
            CoarseRecall(nlp_hub_small, partial_matrix, nlp_clustering_small)

    def test_alternative_proxy_score(
        self, nlp_hub_small, nlp_matrix_small, nlp_clustering_small, nlp_suite_small
    ):
        recall_knn = CoarseRecall(
            nlp_hub_small,
            nlp_matrix_small,
            nlp_clustering_small,
            config=RecallConfig(proxy_score="knn", top_k=5),
        )
        result = recall_knn.recall(nlp_suite_small.task("mnli"))
        assert len(result.recalled_models) == 5


class TestSingletonPropagation:
    def test_singleton_scores_use_propagation(
        self, mnli_result, nlp_clustering_small, nlp_matrix_small
    ):
        """Eq. 4: singleton scores are bounded by prior * max representative proxy."""
        singles = nlp_clustering_small.singleton_models()
        if not singles:
            pytest.skip("no singleton clusters in the reduced test hub")
        max_proxy = max(mnli_result.proxy_scores.values())
        for name in singles:
            prior = nlp_matrix_small.average_accuracy(name)
            assert mnli_result.recall_scores[name] <= prior * max_proxy + 1e-9


class TestRandomRecall:
    def test_returns_k_distinct_models(self, nlp_hub_small, nlp_suite_small):
        result = RandomRecall(nlp_hub_small, rng=0).recall(
            nlp_suite_small.task("mnli"), top_k=5
        )
        assert len(result.recalled_models) == 5
        assert len(set(result.recalled_models)) == 5

    def test_reproducible_with_seed(self, nlp_hub_small, nlp_suite_small):
        task = nlp_suite_small.task("mnli")
        a = RandomRecall(nlp_hub_small, rng=7).recall(task, top_k=5).recalled_models
        b = RandomRecall(nlp_hub_small, rng=7).recall(task, top_k=5).recalled_models
        assert a == b

    def test_invalid_top_k(self, nlp_hub_small, nlp_suite_small):
        with pytest.raises(SelectionError):
            RandomRecall(nlp_hub_small).recall(nlp_suite_small.task("mnli"), top_k=0)


class TestAnnShortlist:
    def test_none_default_is_exact(self):
        assert RecallConfig().ann_shortlist is None

    def test_large_shortlist_bitwise_equals_exact(
        self, nlp_hub_small, nlp_matrix_small, nlp_clustering_small, nlp_suite_small
    ):
        """A shortlist covering every representative must not change a bit."""
        task = nlp_suite_small.task("mnli")
        exact = CoarseRecall(
            nlp_hub_small,
            nlp_matrix_small,
            nlp_clustering_small,
            config=RecallConfig(top_k=5),
        ).recall(task)
        shortlisted = CoarseRecall(
            nlp_hub_small,
            nlp_matrix_small,
            nlp_clustering_small,
            config=RecallConfig(top_k=5, ann_shortlist=len(nlp_hub_small)),
        ).recall(task)
        assert exact.recalled_models == shortlisted.recalled_models
        assert exact.recall_scores == shortlisted.recall_scores

    def test_small_shortlist_returns_valid_result(
        self, nlp_hub_small, nlp_matrix_small, nlp_clustering_small, nlp_suite_small
    ):
        result = CoarseRecall(
            nlp_hub_small,
            nlp_matrix_small,
            nlp_clustering_small,
            config=RecallConfig(top_k=5, ann_shortlist=1),
        ).recall(nlp_suite_small.task("mnli"))
        assert len(result.recalled_models) == 5
        assert set(result.recall_scores) == set(nlp_hub_small.model_names)
        assert all(value >= 0 for value in result.recall_scores.values())

    def test_invalid_shortlist_rejected(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            RecallConfig(ann_shortlist=0)
