"""Tests for the result records."""

import pytest

from repro.core.results import RecallResult, SelectionResult, StageRecord, TwoPhaseResult


def make_selection(runtime=10.0, extra=0.0):
    return SelectionResult(
        method="fine_selection",
        target_name="mnli",
        selected_model="roberta-base",
        selected_accuracy=0.9,
        selected_val_accuracy=0.88,
        runtime_epochs=runtime,
        num_candidates=10,
        extra_epoch_cost=extra,
    )


class TestRecallResult:
    def test_top_model_and_rank(self):
        result = RecallResult(
            target_name="mnli",
            recalled_models=["a", "b", "c"],
            recall_scores={"a": 0.9, "b": 0.8, "c": 0.7},
        )
        assert result.top_model == "a"
        assert result.rank_of("b") == 1
        assert result.rank_of("z") is None


class TestSelectionResult:
    def test_total_cost_includes_extra(self):
        result = make_selection(runtime=10.0, extra=2.5)
        assert result.total_cost == 12.5

    def test_speedup_over(self):
        fast = make_selection(runtime=10.0)
        slow = make_selection(runtime=40.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert slow.speedup_over(fast) == pytest.approx(0.25)

    def test_speedup_with_zero_cost(self):
        free = make_selection(runtime=0.0)
        assert free.speedup_over(make_selection(runtime=10.0)) == float("inf")


class TestTwoPhaseResult:
    def test_properties_delegate(self):
        recall = RecallResult(
            target_name="mnli",
            recalled_models=["roberta-base"],
            recall_scores={"roberta-base": 1.0},
            epoch_cost=3.0,
        )
        selection = make_selection(runtime=14.0)
        result = TwoPhaseResult(target_name="mnli", recall=recall, selection=selection)
        assert result.selected_model == "roberta-base"
        assert result.selected_accuracy == 0.9
        assert result.total_cost == 17.0


class TestStageRecord:
    def test_defaults(self):
        stage = StageRecord(stage=0, surviving_models=["a"], validation_accuracy={"a": 0.5})
        assert stage.removed_by_trend == []
        assert stage.removed_by_halving == []
        assert stage.predicted_accuracy == {}
