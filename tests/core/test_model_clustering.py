"""Tests for repro.core.model_clustering."""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.utils.exceptions import SelectionError


class TestModelClusterer:
    def test_every_model_assigned(self, nlp_clustering_small, nlp_hub_small):
        assert set(nlp_clustering_small.model_names) == set(nlp_hub_small.model_names)

    def test_representatives_have_highest_average_accuracy(
        self, nlp_clustering_small, nlp_matrix_small
    ):
        for cluster_id, members in nlp_clustering_small.non_singleton_clusters().items():
            representative = nlp_clustering_small.representative_of(cluster_id)
            best = max(members, key=nlp_matrix_small.average_accuracy)
            assert representative == best

    def test_sibling_qqp_models_more_similar_than_median(self, nlp_clustering_small):
        """The bert_ft_qqp-* checkpoints should be mutually closer than typical pairs.

        On the reduced test hub (small datasets, few benchmarks) the exact
        cluster boundaries are noisy, so this asserts the underlying
        similarity structure the clustering relies on rather than an exact
        co-membership.
        """
        similarity = nlp_clustering_small.similarity
        off_diagonal = similarity[np.triu_indices_from(similarity, k=1)]
        lower_quartile = float(np.percentile(off_diagonal, 25))
        sibling = nlp_clustering_small.similarity_between(
            "Jeevesh8/bert_ft_qqp-68", "Jeevesh8/bert_ft_qqp-9"
        )
        unrelated = nlp_clustering_small.similarity_between(
            "Jeevesh8/bert_ft_qqp-68",
            "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi",
        )
        assert sibling > lower_quartile
        assert sibling > unrelated

    def test_singleton_helpers_consistent(self, nlp_clustering_small):
        singles = set(nlp_clustering_small.singleton_models())
        for name in nlp_clustering_small.model_names:
            assert nlp_clustering_small.is_singleton(name) == (name in singles)

    def test_similarity_between(self, nlp_clustering_small):
        value = nlp_clustering_small.similarity_between(
            "bert-base-uncased", "roberta-base"
        )
        assert 0.0 <= value <= 1.0
        assert nlp_clustering_small.similarity_between(
            "bert-base-uncased", "bert-base-uncased"
        ) == pytest.approx(1.0)

    def test_summary_counts(self, nlp_clustering_small, nlp_hub_small):
        summary = nlp_clustering_small.summary()
        assert summary["num_models"] == len(nlp_hub_small)
        assert (
            summary["num_models_in_non_singleton"]
            + len(nlp_clustering_small.singleton_models())
            == len(nlp_hub_small)
        )

    def test_representative_of_singleton_raises(self, nlp_clustering_small):
        singles = nlp_clustering_small.singleton_models()
        if singles:
            cluster_id = nlp_clustering_small.cluster_of(singles[0])
            with pytest.raises(SelectionError):
                nlp_clustering_small.representative_of(cluster_id)

    def test_kmeans_clustering(self, nlp_matrix_small, nlp_hub_small):
        config = ClusteringConfig(method="kmeans", num_clusters=4)
        clustering = ModelClusterer(config, seed=0).cluster(
            nlp_matrix_small, model_cards=nlp_hub_small.model_cards()
        )
        assert clustering.assignment.num_clusters == 4

    def test_text_similarity_clustering(self, nlp_matrix_small, nlp_hub_small):
        config = ClusteringConfig(similarity="text")
        clustering = ModelClusterer(config).cluster(
            nlp_matrix_small, model_cards=nlp_hub_small.model_cards()
        )
        assert clustering.assignment.num_clusters >= 1

    def test_performance_similarity_beats_text(self, nlp_matrix_small, nlp_hub_small):
        """Table I's headline: Eq. 1 similarity clusters better than model cards."""
        cards = nlp_hub_small.model_cards()
        performance = ModelClusterer(ClusteringConfig(num_clusters=4)).cluster(
            nlp_matrix_small, model_cards=cards
        )
        text = ModelClusterer(ClusteringConfig(similarity="text", num_clusters=4)).cluster(
            nlp_matrix_small, model_cards=cards
        )
        assert performance.silhouette >= text.silhouette - 0.05

    def test_explicit_threshold_respected(self, nlp_matrix_small):
        tight = ModelClusterer(ClusteringConfig(distance_threshold=1e-9)).cluster(
            nlp_matrix_small
        )
        loose = ModelClusterer(ClusteringConfig(distance_threshold=1.0)).cluster(
            nlp_matrix_small
        )
        assert tight.assignment.num_clusters == len(nlp_matrix_small.model_names)
        assert loose.assignment.num_clusters == 1

    def test_requires_two_models(self, nlp_matrix_small):
        single = nlp_matrix_small.submatrix(["bert-base-uncased"])
        with pytest.raises(SelectionError):
            ModelClusterer(ClusteringConfig()).cluster(single)


class TestAlgorithmDispatch:
    def test_default_algorithm_is_nnchain(self):
        assert ClusteringConfig().algorithm == "nnchain"

    def test_unknown_algorithm_rejected(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusteringConfig(algorithm="scipy")

    @pytest.mark.parametrize("kwargs", [{}, {"num_clusters": 4}, {"distance_threshold": 0.3}])
    def test_scan_and_nnchain_agree_on_the_zoo(self, nlp_matrix_small, kwargs):
        """The oracle gate: both engines cluster the seeded zoo identically."""
        chain = ModelClusterer(ClusteringConfig(algorithm="nnchain", **kwargs)).cluster(
            nlp_matrix_small, cache=False
        )
        scan = ModelClusterer(ClusteringConfig(algorithm="scan", **kwargs)).cluster(
            nlp_matrix_small, cache=False
        )
        assert np.array_equal(chain.assignment.labels, scan.assignment.labels)
        assert chain.representatives == scan.representatives
        assert chain.extras == scan.extras


class TestSilhouetteSkipReporting:
    def test_skip_past_cap_recorded_in_extras(self, nlp_matrix_small, monkeypatch):
        import repro.core.model_clustering as module

        monkeypatch.setattr(module, "SILHOUETTE_MAX_MODELS", 2)
        clustering = ModelClusterer(ClusteringConfig()).cluster(
            nlp_matrix_small, cache=False
        )
        assert clustering.silhouette is None
        assert clustering.extras["silhouette_skipped"] == 1.0

    def test_small_repository_not_marked_skipped(self, nlp_clustering_small):
        assert "silhouette_skipped" not in nlp_clustering_small.extras

    def test_degenerate_labels_are_none_but_not_skipped(self):
        extras = {}
        value = ModelClusterer._safe_silhouette(
            np.zeros((3, 3)), np.zeros(3, dtype=int), extras=extras
        )
        assert value is None
        assert extras == {}
