"""Tests for repro.zoo.hub.ModelHub."""

import numpy as np
import pytest

from repro.data.workloads import DataScale, cv_suite, nlp_suite
from repro.utils.exceptions import HubError
from repro.zoo.hub import ModelHub


class TestConstruction:
    def test_full_hub_sizes(self):
        nlp_hub = ModelHub(nlp_suite(seed=0, scale=DataScale.small()))
        cv_hub = ModelHub(cv_suite(seed=0, scale=DataScale.small()))
        assert len(nlp_hub) == 40
        assert len(cv_hub) == 30

    def test_subset(self, nlp_hub_small):
        sub = nlp_hub_small.subset(["bert-base-uncased", "roberta-base"])
        assert sub.model_names == ["bert-base-uncased", "roberta-base"]

    def test_unknown_model(self, nlp_hub_small):
        with pytest.raises(HubError):
            nlp_hub_small.get("not-a-model")
        with pytest.raises(HubError):
            nlp_hub_small.entry("not-a-model")

    def test_contains(self, nlp_hub_small):
        assert "bert-base-uncased" in nlp_hub_small
        assert "nonexistent" not in nlp_hub_small

    def test_modality_mismatch_rejected(self):
        suite = nlp_suite(seed=0, scale=DataScale.small())
        from repro.zoo.catalog import cv_catalog

        with pytest.raises(HubError):
            ModelHub(suite, entries=cv_catalog()[:2])


class TestModelConstruction:
    def test_models_are_cached(self, nlp_hub_small):
        assert nlp_hub_small.get("bert-base-uncased") is nlp_hub_small.get("bert-base-uncased")

    def test_model_reproducible_across_hub_instances(self, nlp_suite_small):
        hub_a = ModelHub(nlp_suite_small, seed=0).subset(["bert-base-uncased"])
        hub_b = ModelHub(nlp_suite_small, seed=0).subset(["bert-base-uncased"])
        features = nlp_suite_small.task("sst2").train.features[:5]
        assert np.allclose(
            hub_a.get("bert-base-uncased").encode(features),
            hub_b.get("bert-base-uncased").encode(features),
        )

    def test_different_seed_changes_models(self, nlp_suite_small):
        features = nlp_suite_small.task("sst2").train.features[:5]
        a = ModelHub(nlp_suite_small, seed=0).get("bert-base-uncased").encode(features)
        b = ModelHub(nlp_suite_small, seed=1).get("bert-base-uncased").encode(features)
        assert not np.allclose(a, b)

    def test_family_members_share_domain_structure(self, nlp_hub_small):
        qqp_models = [
            nlp_hub_small.get(name)
            for name in nlp_hub_small.model_names
            if "bert_ft_qqp" in name and "init" not in name
        ]
        assert len(qqp_models) >= 2
        base = nlp_hub_small.get("aliosm/sha3bor-metre-detector-arabertv2-base")
        intra = qqp_models[0].domain_affinity(qqp_models[1].domain)
        inter = qqp_models[0].domain_affinity(base.domain)
        assert intra > inter

    def test_model_cards_generated_for_all(self, nlp_hub_small):
        cards = nlp_hub_small.model_cards()
        assert set(cards) == set(nlp_hub_small.model_names)
        assert all(len(card) > 50 for card in cards.values())
