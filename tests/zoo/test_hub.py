"""Tests for repro.zoo.hub.ModelHub."""

import numpy as np
import pytest

from repro.data.workloads import DataScale, cv_suite, nlp_suite
from repro.utils.exceptions import HubError
from repro.zoo.hub import ModelHub


class TestConstruction:
    def test_full_hub_sizes(self):
        nlp_hub = ModelHub(nlp_suite(seed=0, scale=DataScale.small()))
        cv_hub = ModelHub(cv_suite(seed=0, scale=DataScale.small()))
        assert len(nlp_hub) == 40
        assert len(cv_hub) == 30

    def test_subset(self, nlp_hub_small):
        sub = nlp_hub_small.subset(["bert-base-uncased", "roberta-base"])
        assert sub.model_names == ["bert-base-uncased", "roberta-base"]

    def test_unknown_model(self, nlp_hub_small):
        with pytest.raises(HubError):
            nlp_hub_small.get("not-a-model")
        with pytest.raises(HubError):
            nlp_hub_small.entry("not-a-model")

    def test_contains(self, nlp_hub_small):
        assert "bert-base-uncased" in nlp_hub_small
        assert "nonexistent" not in nlp_hub_small

    def test_modality_mismatch_rejected(self):
        suite = nlp_suite(seed=0, scale=DataScale.small())
        from repro.zoo.catalog import cv_catalog

        with pytest.raises(HubError):
            ModelHub(suite, entries=cv_catalog()[:2])


class TestModelConstruction:
    def test_models_are_cached(self, nlp_hub_small):
        assert nlp_hub_small.get("bert-base-uncased") is nlp_hub_small.get("bert-base-uncased")

    def test_model_reproducible_across_hub_instances(self, nlp_suite_small):
        hub_a = ModelHub(nlp_suite_small, seed=0).subset(["bert-base-uncased"])
        hub_b = ModelHub(nlp_suite_small, seed=0).subset(["bert-base-uncased"])
        features = nlp_suite_small.task("sst2").train.features[:5]
        assert np.allclose(
            hub_a.get("bert-base-uncased").encode(features),
            hub_b.get("bert-base-uncased").encode(features),
        )

    def test_different_seed_changes_models(self, nlp_suite_small):
        features = nlp_suite_small.task("sst2").train.features[:5]
        a = ModelHub(nlp_suite_small, seed=0).get("bert-base-uncased").encode(features)
        b = ModelHub(nlp_suite_small, seed=1).get("bert-base-uncased").encode(features)
        assert not np.allclose(a, b)

    def test_family_members_share_domain_structure(self, nlp_hub_small):
        qqp_models = [
            nlp_hub_small.get(name)
            for name in nlp_hub_small.model_names
            if "bert_ft_qqp" in name and "init" not in name
        ]
        assert len(qqp_models) >= 2
        base = nlp_hub_small.get("aliosm/sha3bor-metre-detector-arabertv2-base")
        intra = qqp_models[0].domain_affinity(qqp_models[1].domain)
        inter = qqp_models[0].domain_affinity(base.domain)
        assert intra > inter

    def test_model_cards_generated_for_all(self, nlp_hub_small):
        cards = nlp_hub_small.model_cards()
        assert set(cards) == set(nlp_hub_small.model_names)
        assert all(len(card) > 50 for card in cards.values())


class TestZooVersion:
    def test_fresh_hub_is_epoch_zero(self, nlp_hub_small):
        version = nlp_hub_small.version
        assert version.epoch == 0
        assert version.key.startswith("v0-")

    def test_fingerprint_is_content_based(self, nlp_suite_small, nlp_hub_small):
        same = ModelHub(nlp_suite_small, seed=0).subset(nlp_hub_small.model_names)
        assert same.version.fingerprint == nlp_hub_small.version.fingerprint
        other_seed = ModelHub(nlp_suite_small, seed=1).subset(nlp_hub_small.model_names)
        assert other_seed.version.fingerprint != nlp_hub_small.version.fingerprint

    def test_with_changes_bumps_epoch_and_fingerprint(self, nlp_hub_small):
        removed = nlp_hub_small.model_names[0]
        updated = nlp_hub_small.with_changes(removed=[removed])
        assert updated.version.epoch == 1
        assert updated.version.fingerprint != nlp_hub_small.version.fingerprint
        assert removed not in updated.model_names
        # The original hub is untouched.
        assert removed in nlp_hub_small.model_names
        assert nlp_hub_small.version.epoch == 0

    def test_with_changes_resolves_names_from_catalogue(self, nlp_hub_small):
        new_name = "aviator-neural/bert-base-uncased-sst2"
        assert new_name not in nlp_hub_small.model_names
        updated = nlp_hub_small.with_changes(added=[new_name])
        assert updated.model_names[-1] == new_name
        assert len(updated) == len(nlp_hub_small) + 1

    def test_with_changes_shares_built_models(self, nlp_hub_small):
        kept = nlp_hub_small.model_names[1]
        built = nlp_hub_small.get(kept)
        updated = nlp_hub_small.with_changes(removed=[nlp_hub_small.model_names[0]])
        assert updated.get(kept) is built

    def test_shared_models_match_a_cold_build(self, nlp_suite_small, nlp_hub_small):
        updated = nlp_hub_small.with_changes(removed=[nlp_hub_small.model_names[0]])
        cold = ModelHub(nlp_suite_small, seed=0).subset(updated.model_names)
        name = updated.model_names[0]
        assert np.array_equal(
            updated.get(name).concept_gains, cold.get(name).concept_gains
        )

    def test_invalid_updates_rejected(self, nlp_hub_small):
        with pytest.raises(HubError):
            nlp_hub_small.with_changes(removed=["not-a-model"])
        with pytest.raises(HubError):
            nlp_hub_small.with_changes(added=[nlp_hub_small.model_names[0]])
        with pytest.raises(HubError):
            nlp_hub_small.with_changes(added=["definitely-not-in-catalogue"])
        new_name = "connectivity/bert_ft_qqp-1"
        with pytest.raises(HubError):
            nlp_hub_small.with_changes(added=[new_name], removed=[new_name])
        with pytest.raises(HubError):
            nlp_hub_small.with_changes(removed=list(nlp_hub_small.model_names))

    def test_fingerprint_covers_entry_contents(self, nlp_hub_small):
        from repro.zoo.catalog import ModelCatalogEntry

        strong = ModelCatalogEntry(
            name="custom-x", modality="nlp", architecture="bert",
            family="a", quality=0.9,
        )
        weak = ModelCatalogEntry(
            name="custom-x", modality="nlp", architecture="bert",
            family="b", quality=0.3,
        )
        v_strong = nlp_hub_small.with_changes(added=[strong]).version
        v_weak = nlp_hub_small.with_changes(added=[weak]).version
        assert v_strong.fingerprint != v_weak.fingerprint
