"""Tests for repro.zoo.models.PretrainedModel."""

import numpy as np
import pytest

from repro.utils.exceptions import ConfigurationError, DataError


class TestEncoder:
    def test_encode_shape(self, nlp_hub_small, nlp_suite_small):
        model = nlp_hub_small.get("bert-base-uncased")
        features = nlp_suite_small.task("sst2").train.features[:10]
        encoded = model.encode(features)
        assert encoded.shape == (10, model.hidden_dim)

    def test_encode_is_deterministic(self, nlp_hub_small, nlp_suite_small):
        model = nlp_hub_small.get("bert-base-uncased")
        features = nlp_suite_small.task("sst2").train.features[:5]
        assert np.allclose(model.encode(features), model.encode(features))

    def test_encode_rejects_wrong_dimension(self, nlp_hub_small):
        model = nlp_hub_small.get("bert-base-uncased")
        with pytest.raises(DataError):
            model.encode(np.ones((3, 7)))

    def test_different_models_encode_differently(self, nlp_hub_small, nlp_suite_small):
        features = nlp_suite_small.task("sst2").train.features[:5]
        a = nlp_hub_small.get("bert-base-uncased").encode(features)
        b = nlp_hub_small.get("roberta-base").encode(features)
        assert not np.allclose(a, b)

    def test_higher_quality_means_less_noise(self, nlp_hub_small):
        strong = nlp_hub_small.get("roberta-base")
        weak = nlp_hub_small.get("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi")
        assert strong.representation_noise < weak.representation_noise

    def test_concept_gains_reflect_domain(self, nlp_hub_small):
        model = nlp_hub_small.get("bert-base-uncased")
        # The most-covered concept should have a higher gain than the least covered.
        best = int(np.argmax(model.domain))
        worst = int(np.argmin(model.domain))
        assert model.concept_gains[best] > model.concept_gains[worst]


class TestSourceHead:
    def test_posterior_is_probability_matrix(self, nlp_hub_small, nlp_suite_small):
        model = nlp_hub_small.get("bert-base-uncased")
        features = nlp_suite_small.task("sst2").train.features[:8]
        posterior = model.source_posterior(features)
        assert posterior.shape == (8, model.num_source_classes)
        assert np.allclose(posterior.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(posterior >= 0)

    def test_source_head_is_cached(self, nlp_hub_small):
        model = nlp_hub_small.get("bert-base-uncased")
        assert model.source_head() is model.source_head()


class TestTransferStructure:
    def test_domain_affinity_bounds(self, nlp_hub_small, nlp_suite_small):
        model = nlp_hub_small.get("bert-base-uncased")
        affinity = model.domain_affinity(nlp_suite_small.spec("mnli").domain)
        assert 0.0 <= affinity <= 1.0

    def test_finetuned_sibling_models_have_similar_domains(self, nlp_hub_small):
        """Checkpoints fine-tuned on the same dataset share most of their domain."""
        a = nlp_hub_small.get("Jeevesh8/bert_ft_qqp-68")
        b = nlp_hub_small.get("Jeevesh8/bert_ft_qqp-9")
        unrelated = nlp_hub_small.get("aliosm/sha3bor-metre-detector-arabertv2-base")
        sibling_affinity = a.domain_affinity(b.domain)
        unrelated_affinity = a.domain_affinity(unrelated.domain)
        assert sibling_affinity > unrelated_affinity

    def test_better_matched_model_transfers_better(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        """A strong in-domain model must beat a weak out-of-domain one on average."""
        task = nlp_suite_small.task("mnli")
        strong = nlp_hub_small.get("ishan/bert-base-uncased-mnli")
        weak = nlp_hub_small.get("CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi")
        strong_acc = fine_tuner.fine_tune(strong, task, epochs=3).final_test
        weak_acc = fine_tuner.fine_tune(weak, task, epochs=3).final_test
        assert strong_acc > weak_acc

    def test_modality_mismatch_rejected(self, cv_hub_small, nlp_suite_small, fine_tuner):
        cv_model = cv_hub_small.get("google/vit-base-patch16-224")
        nlp_task = nlp_suite_small.task("sst2")
        with pytest.raises(ConfigurationError):
            fine_tuner.start_session(cv_model, nlp_task)
