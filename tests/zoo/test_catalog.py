"""Tests for repro.zoo.catalog."""

import pytest

from repro.utils.exceptions import ConfigurationError
from repro.zoo.catalog import (
    ModelCatalogEntry,
    catalog_for_modality,
    cv_catalog,
    nlp_catalog,
)


class TestCatalogueContents:
    def test_repository_sizes_match_paper(self):
        assert len(nlp_catalog()) == 40
        assert len(cv_catalog()) == 30

    def test_names_are_unique(self):
        names = [entry.name for entry in nlp_catalog() + cv_catalog()]
        assert len(names) == len(set(names))

    def test_modalities_are_consistent(self):
        assert all(entry.modality == "nlp" for entry in nlp_catalog())
        assert all(entry.modality == "cv" for entry in cv_catalog())

    def test_paper_checkpoints_present(self):
        nlp_names = {entry.name for entry in nlp_catalog()}
        assert "bert-base-uncased" in nlp_names
        assert "roberta-base" in nlp_names
        assert "ishan/bert-base-uncased-mnli" in nlp_names
        cv_names = {entry.name for entry in cv_catalog()}
        assert "google/vit-base-patch16-224" in cv_names
        assert "microsoft/beit-base-patch16-224" in cv_names

    def test_finetune_datasets_reference_known_names(self):
        from repro.data.workloads import nlp_suite, cv_suite, DataScale

        nlp_names = set(nlp_suite(scale=DataScale.small()).dataset_names)
        cv_names = set(cv_suite(scale=DataScale.small()).dataset_names)
        for entry in nlp_catalog():
            assert set(entry.finetune_datasets) <= nlp_names
        for entry in cv_catalog():
            assert set(entry.finetune_datasets) <= cv_names

    def test_quality_range(self):
        for entry in nlp_catalog() + cv_catalog():
            assert 0.0 < entry.quality <= 1.0

    def test_families_group_sibling_checkpoints(self):
        families = {}
        for entry in nlp_catalog():
            families.setdefault(entry.family, []).append(entry.name)
        assert len(families["bert-ft-qqp"]) >= 4
        assert len(families["bert-ft-cola"]) >= 3


class TestEntryValidation:
    def test_short_name_strips_repository(self):
        entry = nlp_catalog()[0]
        assert "/" not in entry.short_name

    def test_rejects_bad_modality(self):
        with pytest.raises(ConfigurationError):
            ModelCatalogEntry(name="x", modality="audio", architecture="a", family="f", quality=0.5)

    def test_rejects_bad_quality(self):
        with pytest.raises(ConfigurationError):
            ModelCatalogEntry(name="x", modality="nlp", architecture="a", family="f", quality=1.5)

    def test_rejects_bad_finetune_weight(self):
        with pytest.raises(ConfigurationError):
            ModelCatalogEntry(
                name="x", modality="nlp", architecture="a", family="f",
                quality=0.5, finetune_weight=1.0,
            )

    def test_catalog_for_modality_dispatch(self):
        assert catalog_for_modality("nlp") == nlp_catalog()
        assert catalog_for_modality("cv") == cv_catalog()
        with pytest.raises(ConfigurationError):
            catalog_for_modality("audio")
