"""Tests for repro.zoo.finetune."""

import numpy as np
import pytest

from repro.utils.exceptions import ConfigurationError, DataError
from repro.zoo.finetune import FineTuneConfig, FineTuner, LearningCurve


class TestFineTuneConfig:
    def test_defaults_valid(self):
        config = FineTuneConfig()
        assert config.epochs == 5

    def test_with_epochs(self):
        assert FineTuneConfig().with_epochs(2).epochs == 2

    def test_with_epochs_preserves_every_field(self):
        """Field-drift regression: with_epochs must carry over EVERY field.

        Builds a config where every field differs from its default, so a
        field added to FineTuneConfig but forgotten by a hand-rolled copy
        would silently reset — dataclasses.replace cannot, and this test
        proves it for all present and future fields.
        """
        import dataclasses

        custom = FineTuneConfig(
            epochs=7,
            learning_rate=3e-3,
            batch_size=16,
            hidden_dims=(48, 24),
            weight_decay=5e-5,
            optimizer="momentum",
            activation="tanh",
        )
        for f in dataclasses.fields(FineTuneConfig):
            assert getattr(custom, f.name) != f.default, (
                f"test setup stale: field {f.name!r} must differ from its "
                "default to detect drift"
            )
        copy = custom.with_epochs(9)
        assert copy.epochs == 9
        for f in dataclasses.fields(FineTuneConfig):
            if f.name != "epochs":
                assert getattr(copy, f.name) == getattr(custom, f.name)

    @pytest.mark.parametrize("kwargs", [
        {"epochs": 0},
        {"learning_rate": 0.0},
        {"batch_size": 0},
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            FineTuneConfig(**kwargs)


class TestLearningCurve:
    def test_final_properties(self):
        curve = LearningCurve("m", "d", val_accuracy=[0.5, 0.7], test_accuracy=[0.4, 0.6])
        assert curve.epochs == 2
        assert curve.final_val == 0.7
        assert curve.final_test == 0.6
        assert curve.best_val == 0.7

    def test_val_at_clamps(self):
        curve = LearningCurve("m", "d", val_accuracy=[0.5, 0.7], test_accuracy=[0.4, 0.6])
        assert curve.val_at(1) == 0.5
        assert curve.val_at(2) == 0.7
        assert curve.val_at(10) == 0.7

    def test_empty_curve_raises(self):
        curve = LearningCurve("m", "d")
        with pytest.raises(DataError):
            _ = curve.final_val
        with pytest.raises(DataError):
            curve.val_at(1)

    def test_truncated(self):
        curve = LearningCurve(
            "m", "d", val_accuracy=[0.1, 0.2, 0.3], test_accuracy=[0.1, 0.2, 0.3],
            train_loss=[3.0, 2.0, 1.0],
        )
        shorter = curve.truncated(2)
        assert shorter.epochs == 2
        assert shorter.final_test == 0.2


class TestFineTuneSession:
    def test_incremental_training_accumulates_epochs(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        model = nlp_hub_small.get("bert-base-uncased")
        session = fine_tuner.start_session(model, nlp_suite_small.task("sst2"))
        assert session.epochs_trained == 0
        session.train_epochs(1)
        assert session.epochs_trained == 1
        session.train_epochs(2)
        assert session.epochs_trained == 3
        assert len(session.curve.val_accuracy) == 3
        assert len(session.curve.test_accuracy) == 3

    def test_single_pass_evaluate_matches_two_pass(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        """The concatenated [val; test] forward equals two separate scores."""
        session = fine_tuner.start_session(
            nlp_hub_small.get("roberta-base"), nlp_suite_small.task("cola")
        )
        session.train_epochs(2)
        val_accuracy, test_accuracy = session.evaluate()
        assert val_accuracy == session.validation_accuracy()
        assert test_accuracy == session.test_accuracy()

    def test_pickle_roundtrip_drops_and_rebuilds_eval_slab(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        import pickle

        session = fine_tuner.start_session(
            nlp_hub_small.get("roberta-base"), nlp_suite_small.task("cola")
        )
        session.train_epochs(1)
        before = session.evaluate()
        assert session._eval_features is not None
        clone = pickle.loads(pickle.dumps(session))
        assert clone._eval_features is None
        assert clone.evaluate() == before

    def test_train_epochs_rejects_non_positive(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        session = fine_tuner.start_session(
            nlp_hub_small.get("bert-base-uncased"), nlp_suite_small.task("sst2")
        )
        with pytest.raises(ConfigurationError):
            session.train_epochs(0)

    def test_accuracy_improves_with_training(
        self, nlp_hub_small, nlp_suite_small, fine_tuner
    ):
        model = nlp_hub_small.get("roberta-base")
        task = nlp_suite_small.task("sst2")
        curve = fine_tuner.fine_tune(model, task, epochs=4)
        assert curve.final_val >= curve.val_accuracy[0] - 0.1
        assert curve.final_test > 1.0 / task.num_classes + 0.05


class TestFineTuner:
    def test_reproducible_runs(self, nlp_hub_small, nlp_suite_small):
        model = nlp_hub_small.get("bert-base-uncased")
        task = nlp_suite_small.task("sst2")
        a = FineTuner(seed=0).fine_tune(model, task, epochs=2)
        b = FineTuner(seed=0).fine_tune(model, task, epochs=2)
        assert a.val_accuracy == b.val_accuracy
        assert a.test_accuracy == b.test_accuracy

    def test_different_learning_rates_give_different_runs(
        self, nlp_hub_small, nlp_suite_small
    ):
        model = nlp_hub_small.get("bert-base-uncased")
        task = nlp_suite_small.task("sst2")
        tuner = FineTuner(seed=0)
        fast = tuner.fine_tune(model, task, epochs=2, config=FineTuneConfig(learning_rate=5e-2, epochs=2))
        slow = tuner.fine_tune(model, task, epochs=2, config=FineTuneConfig(learning_rate=1e-3, epochs=2))
        assert fast.val_accuracy != slow.val_accuracy

    def test_fine_tune_many(self, nlp_hub_small, nlp_suite_small, fine_tuner):
        models = [nlp_hub_small.get(name) for name in nlp_hub_small.model_names[:3]]
        curves = fine_tuner.fine_tune_many(models, nlp_suite_small.task("sst2"), epochs=1)
        assert set(curves) == {model.name for model in models}
        assert all(curve.epochs == 1 for curve in curves.values())
