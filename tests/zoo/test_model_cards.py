"""Tests for repro.zoo.model_cards."""

from repro.zoo.catalog import cv_catalog, nlp_catalog
from repro.zoo.model_cards import render_all_cards, render_model_card


class TestRenderModelCard:
    def test_contains_name_and_architecture(self):
        entry = next(e for e in nlp_catalog() if e.name == "bert-base-uncased")
        card = render_model_card(entry)
        assert "bert-base-uncased" in card
        assert "Intended uses" in card
        assert "Training procedure" in card

    def test_mentions_finetune_datasets(self):
        entry = next(e for e in nlp_catalog() if e.name == "Jeevesh8/bert_ft_qqp-68")
        card = render_model_card(entry)
        assert "qqp" in card

    def test_no_finetune_mentions_absence(self):
        entry = next(e for e in nlp_catalog() if e.name == "roberta-base")
        card = render_model_card(entry)
        assert "without task-specific fine-tuning" in card

    def test_deterministic(self):
        entry = nlp_catalog()[0]
        assert render_model_card(entry) == render_model_card(entry)

    def test_cards_differ_between_models(self):
        cards = render_all_cards(nlp_catalog()[:5])
        assert len(set(cards.values())) == 5

    def test_render_all_cards_covers_catalogue(self):
        cards = render_all_cards(cv_catalog())
        assert len(cards) == 30

    def test_sibling_checkpoints_have_similar_cards(self):
        """Same-family fine-tunes should share most of their card text (this is
        exactly why the text baseline clusters them together)."""
        entries = {e.name: e for e in nlp_catalog()}
        card_a = render_model_card(entries["Jeevesh8/bert_ft_qqp-68"])
        card_b = render_model_card(entries["Jeevesh8/bert_ft_qqp-9"])
        tokens_a = set(card_a.lower().split())
        tokens_b = set(card_b.lower().split())
        overlap = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        assert overlap > 0.7
