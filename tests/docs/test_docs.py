"""Documentation checks: every fenced Python block runs, every link resolves.

``make docs-check`` runs this module.  Two guarantees keep README/docs from
rotting:

* every ```` ```python ```` block in README.md and docs/*.md is executed
  top to bottom (blocks within one file share a namespace, so a later
  block may use names defined by an earlier one, exactly as a reader
  would);
* every relative markdown link (including ``#anchor`` fragments) points at
  a file — and a heading — that exists.

Blocks run against reduced data scales (the default scale and catalogue
are patched down) so the whole suite stays fast; the executed code paths
are identical to the full-scale ones.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
)

_FENCE = re.compile(r"```(\w*)[^\n]*\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


@dataclass
class Block:
    """One fenced code block of a documentation file."""

    path: pathlib.Path
    index: int
    language: str
    code: str

    @property
    def label(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}#block{self.index}"


def _blocks(path: pathlib.Path) -> List[Block]:
    text = path.read_text(encoding="utf-8")
    return [
        Block(path=path, index=i, language=match.group(1).lower(), code=match.group(2))
        for i, match in enumerate(_FENCE.finditer(text))
    ]


def _python_files() -> List[pathlib.Path]:
    return [path for path in DOC_FILES if any(
        block.language == "python" for block in _blocks(path)
    )]


def _github_slug(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


# --------------------------------------------------------------------------- #
# fenced python blocks
# --------------------------------------------------------------------------- #
@pytest.fixture()
def small_world(monkeypatch):
    """Patch the default scale/catalogue down so doc snippets run quickly."""
    from repro.data.workloads import DataScale
    from repro.zoo import catalog, hub

    monkeypatch.setattr(DataScale, "default", classmethod(lambda cls: cls.small()))
    original = catalog.catalog_for_modality
    monkeypatch.setattr(
        catalog, "catalog_for_modality", lambda modality: original(modality)[:10]
    )
    # ModelHub imported the symbol directly; patch its reference too.
    monkeypatch.setattr(
        hub, "catalog_for_modality", lambda modality: original(modality)[:10]
    )


@pytest.mark.parametrize(
    "path", _python_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_python_blocks_execute(path, small_world, tmp_path, capsys):
    """Every ```python block in the file runs top to bottom without error."""
    namespace: Dict[str, object] = {"__name__": f"docs_check_{path.stem}"}
    namespace.update(_preamble(path, tmp_path))
    for block in _blocks(path):
        if block.language != "python":
            continue
        try:
            exec(compile(block.code, block.label, "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"{block.label} failed: {type(error).__name__}: {error}")


def _preamble(path: pathlib.Path, tmp_path) -> Dict[str, object]:
    """Names a file's snippets assume to exist (documented context).

    Doc snippets deliberately start mid-story ("given a performance
    matrix ..."); the preamble supplies exactly that given, nothing more.
    """
    import numpy as np

    from repro.cache import ArtifactCache
    from repro.core.performance import PerformanceMatrix
    from repro.data.workloads import DataScale, WorkloadSuite
    from repro.zoo.hub import ModelHub

    if path.name == "caching.md":
        rng = np.random.default_rng(0)
        matrix = PerformanceMatrix(
            dataset_names=[f"bench-{i}" for i in range(4)],
            model_names=[f"model-{j}" for j in range(6)],
            values=rng.uniform(0.2, 0.95, size=(4, 6)),
        )
        return {
            "matrix": matrix,
            "my_cache": ArtifactCache(max_entries=8, disk_dir=tmp_path / "cache"),
        }
    if path.name in ("parallelism.md", "fused-training.md"):
        suite = WorkloadSuite("nlp", seed=0, scale=DataScale.small())
        return {"suite": suite, "hub": ModelHub(suite, seed=0)}
    if path.name == "persistence.md":
        return {"store_dir": str(tmp_path / "plan-store")}
    return {}


# --------------------------------------------------------------------------- #
# links
# --------------------------------------------------------------------------- #
def _anchors(path: pathlib.Path) -> List[str]:
    return [_github_slug(h) for h in _HEADING.findall(path.read_text(encoding="utf-8"))]


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_links_resolve(path):
    """Every relative link targets an existing file (and heading, if given)."""
    text = path.read_text(encoding="utf-8")
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if _github_slug(target[1:]) not in _anchors(path):
                problems.append(f"missing anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
            problems.append(f"missing anchor {target!r} in {resolved.name}")
    assert not problems, "; ".join(problems)


def test_every_doc_is_reachable_from_readme():
    """docs/*.md must be cross-linked (directly or transitively) from README."""
    reachable = set()
    frontier = [REPO_ROOT / "README.md"]
    while frontier:
        current = frontier.pop()
        if current in reachable or not current.exists():
            continue
        reachable.add(current)
        for target in _LINK.findall(current.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            candidate = (current.parent / target.partition("#")[0]).resolve()
            if candidate.suffix == ".md":
                frontier.append(candidate)
    missing = [str(p.relative_to(REPO_ROOT)) for p in DOC_FILES if p not in reachable]
    assert not missing, f"docs unreachable from README: {missing}"
