"""Checks keeping the generated API reference and docstrings honest.

Run as part of ``make docs-check`` (and the full CI tier): the committed
``docs/api/`` pages must match what ``tools/gen_api_docs.py`` renders from
the current code, and every public symbol must actually carry the
docstring the reference is generated from.
"""

import importlib.util
import inspect
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("gen_api_docs", module)
    spec.loader.exec_module(module)
    return module


def test_generated_api_reference_is_current(generator):
    """docs/api must equal a fresh render (the `make docs-api-check` gate)."""
    pages = generator.render_all()
    problems = []
    api_dir = REPO_ROOT / "docs" / "api"
    for name, content in pages.items():
        path = api_dir / name
        if not path.exists():
            problems.append(f"missing docs/api/{name}")
        elif path.read_text(encoding="utf-8") != content:
            problems.append(f"stale docs/api/{name}")
    for path in api_dir.glob("*.md"):
        if path.name not in pages:
            problems.append(f"unexpected docs/api/{path.name}")
    assert not problems, (
        "; ".join(problems) + " — run `make docs-api` and commit the result"
    )


def test_every_top_level_export_has_a_docstring():
    """Every symbol exported from repro/__init__.py documents itself."""
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # plain constants (e.g. __version__) carry no docstring
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            undocumented.append(name)
    assert not undocumented, f"exports without docstrings: {undocumented}"


def test_every_documented_module_has_a_docstring(generator):
    """Each module the reference renders must open with a module docstring."""
    import importlib

    missing = []
    for package_name, _ in generator.DOCUMENTED:
        package = importlib.import_module(package_name)
        for module_name in generator._submodules(package):
            module = importlib.import_module(module_name)
            if not (module.__doc__ or "").strip():
                missing.append(module_name)
    assert not missing, f"modules without docstrings: {missing}"


def test_package_exports_have_docstrings(generator):
    """Every `__all__` symbol of the documented packages is documented."""
    import importlib

    undocumented = []
    for package_name, _ in generator.DOCUMENTED:
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"exports without docstrings: {undocumented}"
