"""Marker plumbing and shared fixtures for the fault-injection tier.

Everything under ``tests/faultinject/`` is automatically tagged with the
``faultinject`` marker, so the fast CI tier deselects the whole crash-test
tier with ``-m "not faultinject"`` and the dedicated ``test-fault`` tier
selects exactly it — without each module repeating a ``pytestmark`` line
(same pattern as ``tests/property/conftest.py``).

The fixtures mirror the property tier's: offline artifacts built once per
module on the reduced NLP hub, plus the serial oracle every crash-resume
result must match bitwise.
"""

import pathlib

import pytest

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.persist import clear_hooks

_FAULT_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # The hook sees the whole session's items; only tag the ones that live
    # under this directory.
    for item in items:
        if _FAULT_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.faultinject)


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    """Crash hooks are process-global: never let one outlive its test."""
    clear_hooks()
    yield
    clear_hooks()


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def serial_oracle(artifacts):
    """The blocking path's result for the target the crash tests replay."""
    selector = TwoPhaseSelector(artifacts)
    return {
        ("mnli", 5): selector.select("mnli", top_k=5),
        ("boolq", 3): selector.select("boolq", top_k=3),
    }
