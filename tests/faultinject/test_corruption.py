"""On-disk corruption recovery: torn tails, garbage, foreign journals.

A crash model stronger than clean process death: the journal file itself
is damaged (torn final line, bit-flipped record, arbitrary garbage).  The
per-record checksums must confine the damage — recovery keeps the longest
valid prefix, drops the rest, and the resumed run still ends bitwise-equal
to the never-crashed oracle (it merely re-pays the dropped epochs).
"""

import json

import pytest

from harness import assert_bitwise_equal, crash_at

from repro.persist import PlanJournal, PlanStore, SimulatedCrash, pending_requests
from repro.persist.journal import decode_record, encode_record
from repro.sched import EpochScheduler
from repro.zoo.finetune import FineTuner

TARGET, TOP_K = "mnli", 5


def make_scheduler(artifacts, store, fine_tuner):
    tuner = FineTuner(fine_tuner.config, seed=0)
    return EpochScheduler.for_artifacts(artifacts, fine_tuner=tuner, persist=store)


@pytest.fixture()
def crashed_store(artifacts, fine_tuner, tmp_path):
    """A store holding one journal torn by a mid-selection crash."""
    root = tmp_path / "store"
    scheduler = make_scheduler(artifacts, PlanStore(root), fine_tuner)
    with crash_at("plan.step", 4):
        scheduler.submit(TARGET, top_k=TOP_K)
        with pytest.raises(SimulatedCrash):
            scheduler.run_until_idle()
    return root


def journal_path(root):
    paths = PlanStore(root).journal_paths()
    assert len(paths) == 1
    return paths[0]


def resume_matches_oracle(artifacts, root, fine_tuner, oracle):
    scheduler = make_scheduler(artifacts, PlanStore(root), fine_tuner)
    recovered = scheduler.recover()
    if not recovered:
        recovered = [scheduler.submit(TARGET, top_k=TOP_K)]
    scheduler.run_until_idle()
    result = scheduler.result(recovered[0], timeout=10)
    assert_bitwise_equal(result, oracle)
    return scheduler


class TestJournalFileRecovery:
    def test_truncated_final_line_is_dropped(self, crashed_store):
        path = journal_path(crashed_store)
        whole = path.read_text(encoding="utf-8")
        before = len(PlanJournal(path).records)
        # Tear the file mid-way through its final record, as a crashed
        # write() would.
        path.write_text(whole[:-17], encoding="utf-8")
        journal = PlanJournal(path)
        assert len(journal.records) == before - 1
        assert journal.dropped_records >= 1

    def test_garbled_middle_record_truncates_suffix(self, crashed_store):
        path = journal_path(crashed_store)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) >= 3
        lines[1] = lines[1].replace('"', "?", 3)  # bit-rot in record 1
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        journal = PlanJournal(path)
        # Everything from the damaged record on is untrusted.
        assert len(journal.records) == 1
        assert journal.dropped_records == len(lines) - 1

    def test_checksum_rejects_payload_tamper(self, crashed_store):
        path = journal_path(crashed_store)
        lines = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[-1])
        record["payload"]["epochs"] = 999  # tampered, checksum kept
        lines[-1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        journal = PlanJournal(path)
        assert len(journal.records) == len(lines) - 1
        assert all(r["payload"].get("epochs") != 999 for r in journal.records)

    def test_compaction_makes_post_recovery_appends_durable(self, crashed_store):
        """Opening a torn journal compacts it, so new appends are readable.

        Without compaction a record appended after the garbage line would
        sit beyond the invalid prefix and be silently dropped by the
        *next* recovery — a second crash would lose acknowledged records.
        """
        path = journal_path(crashed_store)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # crash mid-append
        journal = PlanJournal(path)
        appended = journal.append("step", {"model": "m", "stage": 9, "epochs": 1})
        reread = PlanJournal(path)
        assert reread.dropped_records == 0
        assert reread.records[-1]["payload"] == appended["payload"]

    def test_empty_journal_is_skipped_not_fatal(self, artifacts, tmp_path):
        root = tmp_path / "empty"
        store = PlanStore(root)
        (store.journals_dir / "plan_zoo_v0_empty.jsonl").write_text("")
        assert pending_requests(store) == []
        journal = PlanJournal(store.journals_dir / "plan_zoo_v0_empty.jsonl")
        assert len(journal.records) == 0
        assert journal.dropped_records == 0

    def test_headerless_journal_is_skipped(self, tmp_path):
        """Valid records but no request header: nothing to resume."""
        root = tmp_path / "headerless"
        store = PlanStore(root)
        path = store.journals_dir / "plan_zoo_v0_headerless.jsonl"
        path.write_text(
            encode_record(0, "step", {"model": "m", "stage": 0, "epochs": 1}) + "\n",
            encoding="utf-8",
        )
        assert pending_requests(store) == []

    def test_decode_record_rejects_sequence_gaps(self):
        line = encode_record(5, "step", {"model": "m", "stage": 0, "epochs": 1})
        assert decode_record(line, expected_seq=5) is not None
        assert decode_record(line, expected_seq=0) is None


class TestRecoveryFiltering:
    def test_mixed_zoo_version_journals_are_skipped(
        self, artifacts, fine_tuner, crashed_store
    ):
        store = PlanStore(crashed_store)
        foreign_key = "plan:zoo=v9-deadbeef:successive_halving:k=5:x:y"
        store.journal(foreign_key).append(
            "request",
            {
                "plan_key": foreign_key,
                "target": TARGET,
                "version_key": "v9-deadbeef",
                "method": "successive_halving",
                "top_k": TOP_K,
                "schedule": [1, 1, 1],
            },
        )
        version = artifacts.version.key
        pending = pending_requests(store, version_key=version)
        assert len(pending) == 1
        assert pending[0].version_key == version
        # recover() must ignore the foreign journal too.
        scheduler = make_scheduler(artifacts, PlanStore(crashed_store), fine_tuner)
        recovered = scheduler.recover()
        assert len(recovered) == 1
        scheduler.run_until_idle()
        scheduler.result(recovered[0], timeout=10)

    def test_recover_skips_requests_already_live(
        self, artifacts, fine_tuner, crashed_store
    ):
        scheduler = make_scheduler(artifacts, PlanStore(crashed_store), fine_tuner)
        first = scheduler.recover()
        assert len(first) == 1
        # The journal's request is queued but unfinished: a second scan
        # must not resubmit it (double recovery would double-charge).
        assert scheduler.recover() == []
        scheduler.run_until_idle()
        scheduler.result(first[0], timeout=10)


class TestEndToEndAfterCorruption:
    def test_resume_after_torn_tail_is_bitwise_identical(
        self, artifacts, serial_oracle, fine_tuner, crashed_store
    ):
        oracle = serial_oracle[(TARGET, TOP_K)]
        path = journal_path(crashed_store)
        whole = path.read_text(encoding="utf-8")
        path.write_text(whole[:-9], encoding="utf-8")
        resume_matches_oracle(artifacts, crashed_store, fine_tuner, oracle)

    def test_resume_after_total_journal_loss_retrains(
        self, artifacts, serial_oracle, fine_tuner, crashed_store
    ):
        """Losing the whole journal degrades to a fresh (correct) run."""
        oracle = serial_oracle[(TARGET, TOP_K)]
        journal_path(crashed_store).unlink()
        resume_matches_oracle(artifacts, crashed_store, fine_tuner, oracle)

    def test_resume_after_snapshot_loss_retrains_but_matches(
        self, artifacts, serial_oracle, fine_tuner, crashed_store
    ):
        """Snapshots are an optimisation: losing them costs epochs only."""
        oracle = serial_oracle[(TARGET, TOP_K)]
        store = PlanStore(crashed_store)
        for snapshot in store.sessions_dir.glob("*.pkl"):
            snapshot.write_bytes(b"\x00corrupt")
        scheduler = resume_matches_oracle(
            artifacts, crashed_store, fine_tuner, oracle
        )
        pool = scheduler.stats()["session_pool"]
        assert pool["restored"] == 0  # every snapshot load failed cleanly


class TestTempFileSweep:
    def test_plan_store_sweeps_dead_writer_temp_files(self, tmp_path):
        import subprocess
        import sys

        root = tmp_path / "sweep"
        store = PlanStore(root)
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        (store.sessions_dir / f"s.pkl.tmp-{proc.pid}-1").write_bytes(b"half")
        (store.journals_dir / f"j.jsonl.tmp-{proc.pid}-1").write_bytes(b"half")
        reopened = PlanStore(root)
        assert reopened.swept_temp_files == 2
        assert reopened.stats()["swept_temp_files"] == 2
