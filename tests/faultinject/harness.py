"""Reusable crash/fault-injection harness for the persistence tier.

Two modes, matching the two crash models worth testing:

**In-process** — :func:`crash_at` installs a hook at a named crash site
(see :mod:`repro.persist.hooks`) that raises
:class:`~repro.persist.SimulatedCrash` on the N-th hit, simulating a
process that dies at exactly that durability boundary.  :func:`counting`
measures how many times a site fires during a clean run, which is how the
exhaustive suite enumerates *every* step boundary before killing at each
one in turn.

**Subprocess** — :class:`ServeProcess` drives a real ``python -m repro
serve`` process over its TCP JSON protocol and kills it for real: either
with ``SIGKILL`` from outside (arbitrary timing), or deterministically at
a named boundary via the ``REPRO_CRASH_SITE``/``REPRO_CRASH_AT``
environment failpoint (``os._exit(137)`` inside the child, which skips
every ``finally``/``atexit``/flush exactly like a kill).

The harness is deliberately free of assertions — tests compose these
primitives with their own oracles.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

import repro
from repro.distrib.wire import connect_with_retry
from repro.persist import SimulatedCrash, install_hook, remove_hook

#: Every named crash site the persistence path declares.  ``plan.prune``
#: fires only for requests with speculative early stopping enabled, at the
#: decision boundary *before* a prune set is applied.
CRASH_SITES = (
    "plan.step", "plan.prune", "journal.append", "journal.flush", "publish"
)

#: Exit status of the environment failpoint (mirrors a SIGKILL's 128+9).
FAILPOINT_EXIT_CODE = 137

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class CrashState:
    """Hit counter shared between a hook and the test that installed it."""

    def __init__(self) -> None:
        self.hits = 0
        self.crashed = False
        self.infos: List[Dict[str, object]] = []


@contextmanager
def counting(site: str) -> Iterator[CrashState]:
    """Count the firings of ``site`` during the block (no crash)."""
    state = CrashState()

    def _hook(_site: str, info: Dict[str, object]) -> None:
        state.hits += 1
        state.infos.append(dict(info))

    install_hook(site, _hook)
    try:
        yield state
    finally:
        remove_hook(site)


@contextmanager
def crash_at(site: str, ordinal: int) -> Iterator[CrashState]:
    """Raise :class:`SimulatedCrash` on the ``ordinal``-th hit of ``site``."""
    state = CrashState()

    def _hook(_site: str, info: Dict[str, object]) -> None:
        state.hits += 1
        state.infos.append(dict(info))
        if state.hits == ordinal:
            state.crashed = True
            raise SimulatedCrash(f"{site}#{ordinal}")

    install_hook(site, _hook)
    try:
        yield state
    finally:
        remove_hook(site)


def assert_bitwise_equal(result, serial) -> None:
    """Full structural equality of two TwoPhaseResult records.

    Same contract as the property tier's helper: winner, stage records,
    validation scores, recall scores and costs must match exactly — float
    equality, not approximate (the resume path must be *bitwise* safe).
    """
    assert result.selected_model == serial.selected_model
    assert result.selected_accuracy == serial.selected_accuracy
    assert (
        result.selection.selected_val_accuracy
        == serial.selection.selected_val_accuracy
    )
    assert result.selection.runtime_epochs == serial.selection.runtime_epochs
    assert result.selection.num_candidates == serial.selection.num_candidates
    assert result.selection.stages == serial.selection.stages
    assert result.selection.final_accuracies == serial.selection.final_accuracies
    assert result.recall.recalled_models == serial.recall.recalled_models
    assert result.recall.recall_scores == serial.recall.recall_scores
    assert result.recall.epoch_cost == serial.recall.epoch_cost
    assert result.total_cost == serial.total_cost


# --------------------------------------------------------------------------- #
# subprocess mode
# --------------------------------------------------------------------------- #
class ServeProcess:
    """One real ``python -m repro serve --port 0`` process plus a TCP client.

    Parameters
    ----------
    store_dir:
        The ``--store-dir`` plan-journal directory (shared across restarts
        — that sharing *is* the crash-safety under test).
    crash_site / crash_ordinal:
        When given, arm the child's environment failpoint: the process
        hard-exits with :data:`FAILPOINT_EXIT_CODE` at the N-th hit of the
        named site.
    num_models:
        ``--num-models`` of the reduced NLP hub (keeps startup fast).
    workers:
        When given, serve through the routed tier (``--workers N``) —
        every crash contract under test must hold identically for a
        consistent-hash router over N worker processes.
    """

    def __init__(
        self,
        store_dir: Path,
        *,
        num_models: int = 8,
        crash_site: Optional[str] = None,
        crash_ordinal: int = 1,
        timeout: float = 120.0,
        workers: Optional[int] = None,
        extra_args: tuple = (),
    ) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        if crash_site is not None:
            env["REPRO_CRASH_SITE"] = crash_site
            env["REPRO_CRASH_AT"] = str(crash_ordinal)
        else:
            env.pop("REPRO_CRASH_SITE", None)
            env.pop("REPRO_CRASH_AT", None)
        self.timeout = timeout
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--modality", "nlp", "--scale", "small",
                "--num-models", str(num_models),
                "--store-dir", str(store_dir),
                "--port", "0",
                *(("--workers", str(workers)) if workers is not None else ()),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        banner_line = self.proc.stdout.readline()
        if not banner_line:
            raise RuntimeError(
                "serve process died before its banner: "
                + (self.proc.stderr.read() or "")[-2000:]
            )
        self.banner = json.loads(banner_line)
        # Poll for port readiness rather than trusting a single connect:
        # the routed tier prints its banner from the router while worker
        # accept loops may still be a scheduling quantum away.
        self.sock = connect_with_retry(
            "127.0.0.1", self.banner["port"], timeout=timeout
        )
        self.sock.settimeout(timeout)
        self._reader = self.sock.makefile("r", encoding="utf-8")
        #: Events read but not yet claimed by a wait_for call — protocol
        #: events are asynchronous, so an answer a test has not asked for
        #: yet must not be lost while waiting for another.
        self._pending: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    def send(self, payload: Dict[str, object]) -> None:
        """Write one protocol line to the server."""
        self.sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))

    def next_event(self) -> Dict[str, object]:
        """Blocking read of the next protocol event (EOF -> RuntimeError)."""
        line = self._reader.readline()
        if not line:
            raise RuntimeError("server connection closed")
        return json.loads(line)

    def wait_for(self, event: str, *, id=None) -> Dict[str, object]:
        """Read events until one matches ``event`` (and ``id`` when given).

        Non-matching events are buffered, not discarded — a later
        ``wait_for`` can still claim an answer that arrived early.
        ``failed`` events for the awaited id raise immediately instead of
        hanging until the socket timeout.
        """

        def matches(message: Dict[str, object]) -> bool:
            return message.get("event") == event and (
                id is None or message.get("id") == id
            )

        for index, message in enumerate(self._pending):
            if matches(message):
                return self._pending.pop(index)
        deadline = time.monotonic() + self.timeout
        while time.monotonic() < deadline:
            message = self.next_event()
            if matches(message):
                return message
            if message.get("event") == "failed" and message.get("id") == id:
                raise RuntimeError(f"request {id} failed: {message}")
            if message.get("event") not in ("progress",):
                self._pending.append(message)
        raise TimeoutError(f"no {event!r} event within {self.timeout}s")

    def wait_until(self, predicate) -> Dict[str, object]:
        """Read events until ``predicate(event)`` is truthy.

        Like :meth:`wait_for` but for conditions a (event, id) pair can't
        express — e.g. "a progress event past stage N".  Non-matching,
        non-progress events are buffered for later ``wait_for`` calls.
        """
        for index, message in enumerate(self._pending):
            if predicate(message):
                return self._pending.pop(index)
        deadline = time.monotonic() + self.timeout
        while time.monotonic() < deadline:
            message = self.next_event()
            if predicate(message):
                return message
            if message.get("event") not in ("progress",):
                self._pending.append(message)
        raise TimeoutError(f"no matching event within {self.timeout}s")

    # ------------------------------------------------------------------ #
    def kill(self) -> int:
        """SIGKILL the process (the real crash model); returns exit status."""
        self.proc.kill()
        return self.proc.wait(timeout=30)

    def wait_dead(self) -> int:
        """Wait for the process to die on its own (armed failpoint mode)."""
        return self.proc.wait(timeout=self.timeout)

    def close(self) -> None:
        """Best-effort clean shutdown of both socket and process."""
        try:
            self.sock.close()
        except OSError:
            pass
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)

    def __enter__(self) -> "ServeProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
