"""Kill-and-resume at every durability boundary: the acceptance suite.

The crash-safety contract (see ``docs/persistence.md``): a scheduler
killed at *any* persistence boundary restarts, recovers the in-flight
request from its journal, and finishes with a result bitwise-identical to
the never-crashed serial path — and the epochs already journaled are
charged to the request without being trained again (session snapshots make
the replay free).

This module enumerates the boundaries of a real run (rather than guessing
their count) and kills at each one in turn.
"""

import dataclasses

import pytest

from harness import assert_bitwise_equal, counting, crash_at

from repro.persist import PlanJournal, PlanStore, SimulatedCrash
from repro.sched import EpochScheduler
from repro.zoo.finetune import FineTuner

TARGET, TOP_K = "mnli", 5
#: Request shape of the speculative (early-stopping) crash tests — the
#: successive-halving ablation over a widened pool fires multiple
#: ``plan.prune`` boundaries on the reduced hub.
SPEC_TARGET, SPEC_TOP_K = "boolq", 8


def make_scheduler(artifacts, store, fine_tuner):
    """Fresh scheduler simulating one process lifetime over ``store``.

    A new FineTuner with the fixture's configuration keeps the tuner
    fingerprint — part of the journal's plan key — stable across
    simulated restarts, exactly like a re-executed server command line.
    """
    tuner = FineTuner(fine_tuner.config, seed=0)
    return EpochScheduler.for_artifacts(artifacts, fine_tuner=tuner, persist=store)


def journaled_step_epochs(store_root) -> int:
    """Fine-tuning epochs durably recorded by the (single) journal."""
    paths = PlanStore(store_root).journal_paths()
    if not paths:
        return 0
    journal = PlanJournal(paths[0])
    return sum(r["payload"]["epochs"] for r in journal.of_type("step"))


def run_and_crash(artifacts, store_root, fine_tuner, site, ordinal):
    """Submit the canonical request and die at the armed crash point."""
    scheduler = make_scheduler(artifacts, PlanStore(store_root), fine_tuner)
    with crash_at(site, ordinal) as state:
        scheduler.submit(TARGET, top_k=TOP_K)
        with pytest.raises(SimulatedCrash):
            scheduler.run_until_idle()
    assert state.crashed


def resume_and_check(artifacts, store_root, fine_tuner, oracle):
    """Restart over the same store; the result must match the oracle."""
    replayable = journaled_step_epochs(store_root)
    scheduler = make_scheduler(artifacts, PlanStore(store_root), fine_tuner)
    recovered = scheduler.recover()
    if not recovered:
        # Crashed before the request record became durable: the request
        # was never accepted, so the client resubmits from scratch.
        recovered = [scheduler.submit(TARGET, top_k=TOP_K)]
    assert len(recovered) == 1
    scheduler.run_until_idle()
    result = scheduler.result(recovered[0], timeout=10)
    assert_bitwise_equal(result, oracle)

    stats = scheduler.stats()
    persist, pool = stats["persist"], stats["session_pool"]
    # Every journaled epoch is charged by replay, not trained again …
    assert persist["epochs_replayed"] == replayable
    # … because the published snapshots cover at least the journaled
    # prefix (snapshot-before-journal ordering), so the pool reuses them.
    assert pool["epochs_reused"] >= replayable
    charged = result.selection.runtime_epochs
    assert pool["epochs_trained"] + pool["epochs_reused"] == charged
    return stats


class TestKillAtEveryStepBoundary:
    def test_resume_is_bitwise_identical_at_every_boundary(
        self, artifacts, serial_oracle, fine_tuner, tmp_path
    ):
        oracle = serial_oracle[(TARGET, TOP_K)]
        # Enumerate the boundaries with a counting run first.
        scheduler = make_scheduler(
            artifacts, PlanStore(tmp_path / "enumerate"), fine_tuner
        )
        with counting("plan.step") as clean:
            scheduler.submit(TARGET, top_k=TOP_K)
            scheduler.run_until_idle()
        assert clean.hits >= 3, "selection must have multiple step boundaries"

        for boundary in range(1, clean.hits + 1):
            root = tmp_path / f"crash-{boundary}"
            run_and_crash(artifacts, root, fine_tuner, "plan.step", boundary)
            stats = resume_and_check(artifacts, root, fine_tuner, oracle)
            if boundary > 1:
                # Steps before the crash were journaled and must replay.
                assert stats["persist"]["epochs_replayed"] >= 1


class TestKillAtOtherDurabilityBoundaries:
    @pytest.mark.parametrize("site", ["journal.append", "journal.flush", "publish"])
    @pytest.mark.parametrize("ordinal", [1, 3])
    def test_resume_after_crash_at_site(
        self, artifacts, serial_oracle, fine_tuner, tmp_path, site, ordinal
    ):
        oracle = serial_oracle[(TARGET, TOP_K)]
        root = tmp_path / f"{site}-{ordinal}"
        run_and_crash(artifacts, root, fine_tuner, site, ordinal)
        resume_and_check(artifacts, root, fine_tuner, oracle)

    def test_double_crash_then_resume(
        self, artifacts, serial_oracle, fine_tuner, tmp_path
    ):
        """Crashing the *recovery* run leaves the store recoverable again."""
        oracle = serial_oracle[(TARGET, TOP_K)]
        root = tmp_path / "double"
        run_and_crash(artifacts, root, fine_tuner, "plan.step", 3)
        first_replayable = journaled_step_epochs(root)
        # Second lifetime crashes too — later than the first, so it must
        # have journaled additional steps beyond the replayed prefix.
        scheduler = make_scheduler(artifacts, PlanStore(root), fine_tuner)
        with crash_at("plan.step", first_replayable + 2) as state:
            recovered = scheduler.recover()
            assert len(recovered) == 1
            with pytest.raises(SimulatedCrash):
                scheduler.run_until_idle()
        assert state.crashed
        assert journaled_step_epochs(root) > first_replayable
        resume_and_check(artifacts, root, fine_tuner, oracle)


class TestBudgetRaise:
    def test_raise_budget_continues_from_old_rungs(
        self, artifacts, fine_tuner, tmp_path
    ):
        import dataclasses

        from repro.core.config import FineSelectionConfig
        from repro.core.pipeline import TwoPhaseSelector

        root = tmp_path / "raise"
        # First lifetime: run the default budget to completion.
        s1 = make_scheduler(artifacts, PlanStore(root), fine_tuner)
        r1 = s1.submit(TARGET, top_k=TOP_K)
        s1.run_until_idle()
        res1 = s1.result(r1, timeout=10)

        raised = artifacts.config.fine_selection.total_epochs * 2
        # Serial oracle at the raised budget (same artifacts, same tuner).
        artifacts6 = dataclasses.replace(
            artifacts,
            config=dataclasses.replace(
                artifacts.config,
                fine_selection=dataclasses.replace(
                    artifacts.config.fine_selection, total_epochs=raised
                ),
            ),
        )
        oracle6 = TwoPhaseSelector(
            artifacts6, fine_tuner=FineTuner(fine_tuner.config, seed=0)
        ).select(TARGET, top_k=TOP_K)

        # Second lifetime: same journal, raised budget.
        s2 = make_scheduler(artifacts, PlanStore(root), fine_tuner)
        r2 = s2.submit(TARGET, top_k=TOP_K, total_epochs=raised)
        s2.run_until_idle()
        res2 = s2.result(r2, timeout=10)
        assert_bitwise_equal(res2, oracle6)

        stats = s2.stats()
        replayed = stats["persist"]["epochs_replayed"]
        pool = stats["session_pool"]
        # The old rungs were replayed from the journal, and only the
        # *delta* beyond the snapshots was actually trained.
        assert replayed == res1.selection.runtime_epochs
        assert pool["epochs_reused"] >= replayed
        delta = res2.selection.runtime_epochs - res1.selection.runtime_epochs
        assert pool["epochs_trained"] <= delta

    def test_same_budget_resubmit_is_result_fast_path(
        self, artifacts, serial_oracle, fine_tuner, tmp_path
    ):
        oracle = serial_oracle[(TARGET, TOP_K)]
        root = tmp_path / "fastpath"
        s1 = make_scheduler(artifacts, PlanStore(root), fine_tuner)
        r1 = s1.submit(TARGET, top_k=TOP_K)
        s1.run_until_idle()
        s1.result(r1, timeout=10)

        s2 = make_scheduler(artifacts, PlanStore(root), fine_tuner)
        r2 = s2.submit(TARGET, top_k=TOP_K)
        s2.run_until_idle()
        res2 = s2.result(r2, timeout=10)
        assert_bitwise_equal(res2, oracle)
        stats = s2.stats()
        assert stats["persist"]["results_restored"] == 1
        assert stats["session_pool"]["epochs_trained"] == 0


@pytest.fixture(scope="module")
def spec_artifacts(artifacts):
    """The halving ablation: with the paper's trend filter the cohort
    collapses to one arm after the first rung, so speculative pruning (and
    its ``plan.prune`` crash site) would never fire."""
    config = artifacts.config
    return dataclasses.replace(
        artifacts,
        config=dataclasses.replace(
            config,
            fine_selection=dataclasses.replace(
                config.fine_selection, use_trend_filter=False
            ),
        ),
    )


@pytest.fixture(scope="module")
def speculative_oracle(spec_artifacts, fine_tuner):
    """The never-crashed speculative run every resumed run must match."""
    scheduler = make_scheduler(spec_artifacts, None, fine_tuner)
    handle = scheduler.submit(SPEC_TARGET, top_k=SPEC_TOP_K, extrapolate=True)
    scheduler.run_until_idle()
    result = scheduler.result(handle, timeout=10)
    assert result.selection.extras.get("extrapolation"), (
        "the speculative crash tests need a request that actually prunes"
    )
    return result


@pytest.mark.extrapolation
class TestKillAtEveryPruneBoundary:
    """Crash-safety of speculative early stopping: the prune set replays.

    The prune decision is a pure function of the journaled curves, so a
    scheduler killed at *any* early-stop decision boundary must resume to
    a result bitwise-identical to the never-crashed speculative run — the
    identical prune set, the identical honesty extras — with every
    journaled epoch charged by replay rather than trained (and thus
    charged) a second time.
    """

    def run_and_crash_speculative(self, artifacts, store_root, fine_tuner, site, ordinal):
        scheduler = make_scheduler(artifacts, PlanStore(store_root), fine_tuner)
        with crash_at(site, ordinal) as state:
            scheduler.submit(SPEC_TARGET, top_k=SPEC_TOP_K, extrapolate=True)
            with pytest.raises(SimulatedCrash):
                scheduler.run_until_idle()
        assert state.crashed
        return state

    def resume_and_check_speculative(self, artifacts, store_root, fine_tuner, oracle):
        replayable = journaled_step_epochs(store_root)
        scheduler = make_scheduler(artifacts, PlanStore(store_root), fine_tuner)
        recovered = scheduler.recover()
        assert len(recovered) == 1, "the speculative request must recover"
        scheduler.run_until_idle()
        result = scheduler.result(recovered[0], timeout=10)

        assert_bitwise_equal(result, oracle)
        # The honesty layer replays bitwise too: identical prune set,
        # identical per-arm decision records, identical regret bound.
        assert result.selection.extras == oracle.selection.extras

        stats = scheduler.stats()
        persist, pool = stats["persist"], stats["session_pool"]
        # Zero double-charged epochs: everything journaled before the
        # crash is charged by replay (served from snapshots), and replay
        # plus fresh training adds up to exactly the charged total.
        assert persist["epochs_replayed"] == replayable
        assert pool["epochs_reused"] >= replayable
        charged = result.selection.runtime_epochs
        assert pool["epochs_trained"] + pool["epochs_reused"] == charged
        return stats

    def test_resume_replays_identical_prunes_at_every_boundary(
        self, spec_artifacts, speculative_oracle, fine_tuner, tmp_path
    ):
        # Enumerate the early-stop boundaries with a clean counting run.
        scheduler = make_scheduler(
            spec_artifacts, PlanStore(tmp_path / "enumerate"), fine_tuner
        )
        with counting("plan.prune") as clean:
            scheduler.submit(SPEC_TARGET, top_k=SPEC_TOP_K, extrapolate=True)
            scheduler.run_until_idle()
        assert clean.hits >= 1, "the ablation request must hit prune boundaries"
        oracle_prunes = set(
            speculative_oracle.selection.extras["extrapolation"]["pruned"]
        )
        # The crash hook sees each decision's prune set before it applies.
        announced = set().union(*(set(info["models"]) for info in clean.infos))
        assert announced == oracle_prunes

        for boundary in range(1, clean.hits + 1):
            root = tmp_path / f"prune-crash-{boundary}"
            self.run_and_crash_speculative(
                spec_artifacts, root, fine_tuner, "plan.prune", boundary
            )
            stats = self.resume_and_check_speculative(
                spec_artifacts, root, fine_tuner, speculative_oracle
            )
            if boundary > 1:
                # Stages feeding the earlier prune decisions were already
                # journaled, so the resume re-derives those prunes from
                # replayed (not retrained) epochs.
                assert stats["persist"]["prunes_replayed"] >= 1

    def test_crash_between_prune_and_next_stage(
        self, spec_artifacts, speculative_oracle, fine_tuner, tmp_path
    ):
        """Kill at the first step *after* a prune was applied and journaled:
        resume must not prune again (no double-retire, no drift)."""
        # A clean pass first to learn at which stage the first prune fires.
        scheduler = make_scheduler(
            spec_artifacts, PlanStore(tmp_path / "post-prune-clean"), fine_tuner
        )
        with counting("plan.prune") as clean:
            scheduler.submit(SPEC_TARGET, top_k=SPEC_TOP_K, extrapolate=True)
            scheduler.run_until_idle()
        first_prune_stage = clean.infos[0]["stage"]

        from repro.persist import clear_hooks, install_hook

        root = tmp_path / "post-prune-crash"
        scheduler = make_scheduler(spec_artifacts, PlanStore(root), fine_tuner)
        seen = {"past_prune": 0}

        def kill_after_prune(_site, info):
            if info["stage"] >= first_prune_stage:
                seen["past_prune"] += 1
                if seen["past_prune"] == 2:
                    raise SimulatedCrash("post-prune step")

        install_hook("plan.step", kill_after_prune)
        scheduler.submit(SPEC_TARGET, top_k=SPEC_TOP_K, extrapolate=True)
        with pytest.raises(SimulatedCrash):
            scheduler.run_until_idle()
        clear_hooks()
        self.resume_and_check_speculative(
            spec_artifacts, root, fine_tuner, speculative_oracle
        )


class TestAnytimeAnswers:
    def test_best_so_far_mid_run_and_after(self, artifacts, fine_tuner, tmp_path):
        scheduler = make_scheduler(
            artifacts, PlanStore(tmp_path / "anytime"), fine_tuner
        )
        request = scheduler.submit(TARGET, top_k=TOP_K)
        snapshots = []

        from repro.persist import install_hook

        def snapshot_hook(_site, _info):
            # poll() re-enters the scheduler lock from the same thread
            # (RLock), which is exactly how a client-facing thread reads
            # anytime state while training is in flight.
            snapshots.append(scheduler.poll(request, best=True)["anytime"])

        install_hook("plan.step", snapshot_hook)
        scheduler.run_until_idle()
        result = scheduler.result(request, timeout=10)

        assert snapshots, "plan.step must have fired"
        mid = snapshots[len(snapshots) // 2]
        assert mid["best"] is not None
        assert mid["best"]["model"] in result.recall.recalled_models
        assert 0.0 < mid["best"]["confidence"] <= 1.0
        ranks = [c["confidence"] for c in mid["candidates"]]
        assert all(
            ranks[i] >= ranks[i + 1]
            or mid["candidates"][i]["surviving"]
            >= mid["candidates"][i + 1]["surviving"]
            for i in range(len(ranks) - 1)
        )

        # After completion the snapshot collapses to the final winner.
        final = scheduler.poll(request, best=True)["anytime"]
        assert final["final"] is True
        assert final["best"]["model"] == result.selected_model
        assert final["best"]["confidence"] == 1.0
