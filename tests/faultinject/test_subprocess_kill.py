"""Real-process crash tests: kill ``python -m repro serve``, restart, resume.

The in-process suites prove every boundary; this one proves the claim
holds for an actual operating-system process — spawned fresh, killed
without warning (``SIGKILL`` or the ``os._exit`` failpoint, neither of
which runs any Python cleanup), restarted against the same ``--store-dir``
— and that the recovered answer matches a server that never crashed.
"""

import pytest

from harness import FAILPOINT_EXIT_CODE, ServeProcess

TARGET, TOP_K = "mnli", 5


@pytest.fixture(params=[None, 2], ids=["single", "routed2"])
def workers(request):
    """Run every crash contract against both deployment shapes: one
    process, and a consistent-hash router over two workers."""
    return request.param

#: Event fields that legitimately differ between runs.
VOLATILE = ("id", "latency_seconds")


def reference_payload(tmp_path, workers=None):
    """Result payload of one clean, never-crashed serve run."""
    with ServeProcess(tmp_path / "reference-store", workers=workers) as serve:
        serve.send({"op": "select", "target": TARGET, "top_k": TOP_K, "id": "ref"})
        serve.wait_for("accepted", id="ref")
        result = serve.wait_for("result", id="ref")
        serve.send({"op": "shutdown"})
    return {k: v for k, v in result.items() if k not in VOLATILE}


class TestServeProcessCrash:
    def test_failpoint_kill_then_restart_recovers_result(self, tmp_path, workers):
        reference = reference_payload(tmp_path, workers)
        store = tmp_path / "store"

        # Lifetime 1: dies via os._exit at the 4th step boundary.
        crashed = ServeProcess(store, crash_site="plan.step", crash_ordinal=4,
                               workers=workers)
        with crashed:
            crashed.send(
                {"op": "select", "target": TARGET, "top_k": TOP_K, "id": "req"}
            )
            crashed.wait_for("accepted", id="req")
            assert crashed.wait_dead() == FAILPOINT_EXIT_CODE

        # Lifetime 2: same store, no failpoint; startup recovery resumes
        # the journaled request and streams its result unprompted.
        with ServeProcess(store, workers=workers) as restarted:
            assert restarted.banner["recovered"] == 1
            result = restarted.wait_for("result")
            assert str(result["id"]).startswith("recovered-")
            payload = {k: v for k, v in result.items() if k not in VOLATILE}
            assert payload == reference

            # The journaled result now serves resubmissions instantly.
            restarted.send(
                {"op": "select", "target": TARGET, "top_k": TOP_K, "id": "again"}
            )
            restarted.wait_for("accepted", id="again")
            again = restarted.wait_for("result", id="again")
            assert {k: v for k, v in again.items() if k not in VOLATILE} == reference
            restarted.send({"op": "shutdown"})

    def test_sigkill_then_restart_converges(self, tmp_path, workers):
        """SIGKILL at arbitrary timing: whatever was or wasn't journaled,
        the restarted server ends up with the reference answer."""
        reference = reference_payload(tmp_path, workers)
        store = tmp_path / "store-sigkill"

        victim = ServeProcess(store, workers=workers)
        with victim:
            victim.send(
                {"op": "select", "target": TARGET, "top_k": TOP_K, "id": "req"}
            )
            # Kill without waiting: the request may be anywhere between
            # queued and completed — every state must be recoverable.
            status = victim.kill()
            assert status != 0

        with ServeProcess(store, workers=workers) as restarted:
            assert restarted.banner["recovered"] in (0, 1)
            if restarted.banner["recovered"]:
                result = restarted.wait_for("result")
                assert {k: v for k, v in result.items() if k not in VOLATILE} == reference
            restarted.send(
                {"op": "select", "target": TARGET, "top_k": TOP_K, "id": "fresh"}
            )
            restarted.wait_for("accepted", id="fresh")
            fresh = restarted.wait_for("result", id="fresh")
            assert {k: v for k, v in fresh.items() if k not in VOLATILE} == reference
            restarted.send({"op": "shutdown"})

    def test_resume_verb_reports_recovered_requests(self, tmp_path, workers):
        store = tmp_path / "store-resume"
        crashed = ServeProcess(store, crash_site="plan.step", crash_ordinal=2,
                               workers=workers)
        with crashed:
            crashed.send(
                {"op": "select", "target": TARGET, "top_k": TOP_K, "id": "req"}
            )
            crashed.wait_for("accepted", id="req")
            assert crashed.wait_dead() == FAILPOINT_EXIT_CODE

        # A client can also drive recovery explicitly with the resume verb
        # (idempotent: the second call finds nothing new in flight).
        with ServeProcess(store, workers=workers) as restarted:
            restarted.send({"op": "resume", "id": "r1"})
            recovered = restarted.wait_for("recovered", id="r1")
            # Startup recovery (banner) may have adopted the request
            # already; between it and the verb, exactly one recovery ran.
            total = restarted.banner["recovered"] + recovered["count"]
            assert total == 1
            restarted.wait_for("result")
            restarted.send({"op": "resume", "id": "r2"})
            again = restarted.wait_for("recovered", id="r2")
            assert again["count"] == 0
            restarted.send({"op": "shutdown"})
