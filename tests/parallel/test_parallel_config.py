"""Tests for ParallelConfig spec parsing and worker resolution."""

import pytest

from repro.parallel import PARALLEL_ENV_VAR, ParallelConfig
from repro.utils.exceptions import ConfigurationError


class TestParallelConfig:
    def test_default_is_serial(self):
        config = ParallelConfig()
        assert config.backend == "serial"
        assert not config.is_parallel
        assert config.resolved_workers() == 1

    @pytest.mark.parametrize(
        "spec, backend, workers",
        [
            ("serial", "serial", None),
            ("thread", "thread", None),
            ("thread:4", "thread", 4),
            ("process:2", "process", 2),
            ("PROCESS:8", "process", 8),
            ("  thread:3  ", "thread", 3),
        ],
    )
    def test_from_spec(self, spec, backend, workers):
        config = ParallelConfig.from_spec(spec)
        assert config.backend == backend
        assert config.max_workers == workers

    def test_from_spec_none_and_empty_mean_serial(self):
        assert ParallelConfig.from_spec(None).backend == "serial"
        assert ParallelConfig.from_spec("").backend == "serial"

    @pytest.mark.parametrize("spec", ["fibre", "thread:x", "thread:", "process:0x4"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            ParallelConfig.from_spec(spec)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(backend="gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(backend="thread", max_workers=0)

    def test_spec_roundtrip(self):
        for text in ("serial", "thread", "process:4"):
            assert ParallelConfig.from_spec(text).spec() == text

    def test_resolved_workers_explicit(self):
        assert ParallelConfig("process", 4).resolved_workers() == 4

    def test_resolved_workers_default_bounded(self):
        workers = ParallelConfig("thread").resolved_workers()
        assert 1 <= workers <= ParallelConfig.DEFAULT_WORKER_CAP

    def test_is_parallel_requires_multiple_workers(self):
        assert ParallelConfig("thread", 4).is_parallel
        assert not ParallelConfig("thread", 1).is_parallel

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "process:3")
        config = ParallelConfig.from_env()
        assert (config.backend, config.max_workers) == ("process", 3)

    def test_from_env_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV_VAR, raising=False)
        assert ParallelConfig.from_env().backend == "serial"
        assert ParallelConfig.from_env("thread:2").max_workers == 2
