"""Tests for the executor backends: ordering, closures, errors, resolution."""

import pickle
import threading

import pytest

from repro.parallel import (
    Executor,
    ParallelConfig,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.utils.exceptions import ConfigurationError

ALL_EXECUTORS = [
    SerialExecutor(),
    ThreadExecutor(max_workers=4),
    ProcessExecutor(max_workers=4),
]


def _ids(executor):
    return executor.backend


class TestMapContract:
    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=_ids)
    def test_preserves_input_order(self, executor):
        items = list(range(23))
        assert executor.map(lambda x: x * x, items) == [x * x for x in items]

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=_ids)
    def test_empty_input(self, executor):
        assert executor.map(lambda x: x, []) == []

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=_ids)
    def test_single_item(self, executor):
        assert executor.map(lambda x: x + 1, [41]) == [42]

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=_ids)
    def test_closure_over_local_state(self, executor):
        table = {i: i * 10 for i in range(8)}
        assert executor.map(lambda i: table[i], range(8)) == [i * 10 for i in range(8)]

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=_ids)
    def test_exceptions_propagate(self, executor):
        with pytest.raises(ZeroDivisionError):
            executor.map(lambda x: 1 // x, [2, 1, 0])

    @pytest.mark.parametrize("executor", ALL_EXECUTORS, ids=_ids)
    def test_identical_across_backends(self, executor):
        reference = SerialExecutor().map(lambda x: x**3 - x, range(17))
        assert executor.map(lambda x: x**3 - x, range(17)) == reference


class TestThreadExecutor:
    def test_actually_uses_multiple_threads(self):
        seen = set()
        barrier = threading.Barrier(2, timeout=5)

        def record(_):
            barrier.wait()  # forces two concurrent workers
            seen.add(threading.get_ident())
            return None

        ThreadExecutor(max_workers=2).map(record, range(2))
        assert len(seen) == 2

    def test_worker_cap_respected(self):
        executor = ThreadExecutor(max_workers=3)
        assert executor.resolved_workers() == 3

    def test_nested_map_degrades_to_serial(self):
        outer = ThreadExecutor(max_workers=2)
        inner_threads = set()

        def nested(i):
            inner = ThreadExecutor(max_workers=2)
            return inner.map(
                lambda x: inner_threads.add(threading.get_ident()) or (x + i),
                range(3),
            )

        assert outer.map(nested, range(2)) == [[0, 1, 2], [1, 2, 3]]
        # The inner maps ran on the outer workers' threads, not new pools.
        assert len(inner_threads) <= 2


class TestProcessExecutor:
    def test_runs_in_child_processes(self):
        import os

        parent = os.getpid()
        pids = ProcessExecutor(max_workers=2).map(lambda _: os.getpid(), range(4))
        assert all(pid != parent for pid in pids)

    def test_parent_state_not_mutated(self):
        bucket = []
        ProcessExecutor(max_workers=2).map(lambda i: bucket.append(i), range(4))
        assert bucket == []  # appends happened in forked copies

    def test_nested_map_degrades_to_serial(self):
        outer = ProcessExecutor(max_workers=2)

        def nested(i):
            # Inside a daemonic worker the inner map must not fork again.
            return ProcessExecutor(max_workers=2).map(lambda x: x + i, range(3))

        assert outer.map(nested, range(2)) == [[0, 1, 2], [1, 2, 3]]

    def test_executor_is_picklable(self):
        executor = ProcessExecutor(max_workers=2)
        clone = pickle.loads(pickle.dumps(executor))
        assert clone.map(lambda x: x * 2, [1, 2]) == [2, 4]


class TestGetExecutor:
    def test_none_is_serial(self):
        assert isinstance(get_executor(None), SerialExecutor)

    def test_spec_string(self):
        executor = get_executor("thread:4")
        assert isinstance(executor, ThreadExecutor)
        assert executor.max_workers == 4

    def test_config(self):
        executor = get_executor(ParallelConfig("process", 2))
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 2

    def test_executor_passthrough(self):
        executor = ThreadExecutor(max_workers=2)
        assert get_executor(executor) is executor

    def test_invalid_input_rejected(self):
        with pytest.raises(ConfigurationError):
            get_executor(42)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(max_workers=0)

    def test_base_executor_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().map(lambda x: x, [1])


class TestSourceHeadThreadSafety:
    def test_concurrent_source_head_trains_once(self):
        """Lazy source-head training is lock-guarded: racing threads all get
        the same head object (weights independent of interleaving)."""
        from repro.data.workloads import DataScale, WorkloadSuite
        from repro.zoo.hub import ModelHub

        suite = WorkloadSuite("nlp", seed=0, scale=DataScale.small())
        model = ModelHub(suite, seed=0).get("bert-base-uncased")
        barrier = threading.Barrier(4, timeout=10)
        heads = []

        def grab():
            barrier.wait()
            heads.append(model.source_head())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(heads) == 4
        assert all(head is heads[0] for head in heads)

    def test_model_with_trained_head_pickles(self):
        from repro.data.workloads import DataScale, WorkloadSuite
        from repro.zoo.hub import ModelHub

        suite = WorkloadSuite("nlp", seed=0, scale=DataScale.small())
        model = ModelHub(suite, seed=0).get("roberta-base")
        model.source_head()
        clone = pickle.loads(pickle.dumps(model))
        assert clone.source_head() is clone._source_head
