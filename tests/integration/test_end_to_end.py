"""Integration tests: the full offline + online pipeline on both modalities.

These tests exercise the same path a user of the library follows: build a
hub, run the offline phase, then answer online selection queries — and they
check the cross-module invariants the paper's evaluation relies on.
"""

import numpy as np
import pytest

from repro.core.config import FineSelectionConfig, PipelineConfig, RecallConfig
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.selection import BruteForceSelection, SuccessiveHalving
from repro.zoo.finetune import FineTuner


@pytest.fixture(scope="module")
def nlp_artifacts(nlp_hub_small, nlp_suite_small, nlp_matrix_small, nlp_clustering_small, test_pipeline_config):
    return OfflineArtifacts(
        hub=nlp_hub_small,
        suite=nlp_suite_small,
        matrix=nlp_matrix_small,
        clustering=nlp_clustering_small,
        config=test_pipeline_config,
    )


@pytest.fixture(scope="module")
def cv_selector(cv_hub_small, cv_suite_small, cv_matrix_small, fine_tuner, test_pipeline_config):
    from repro.core.model_clustering import ModelClusterer

    clustering = ModelClusterer(test_pipeline_config.clustering).cluster(
        cv_matrix_small, model_cards=cv_hub_small.model_cards()
    )
    artifacts = OfflineArtifacts(
        hub=cv_hub_small,
        suite=cv_suite_small,
        matrix=cv_matrix_small,
        clustering=clustering,
        config=test_pipeline_config,
    )
    return TwoPhaseSelector(artifacts, fine_tuner=fine_tuner)


class TestNlpEndToEnd:
    def test_two_phase_cheaper_and_competitive(self, nlp_artifacts, fine_tuner, nlp_hub_small, nlp_suite_small):
        selector = TwoPhaseSelector(nlp_artifacts, fine_tuner=fine_tuner)
        config = FineSelectionConfig(total_epochs=3)
        task = nlp_suite_small.task("mnli")

        two_phase = selector.select("mnli", top_k=6)
        brute_force = BruteForceSelection(nlp_hub_small, fine_tuner, config=config).run(
            nlp_hub_small.model_names, task
        )
        halving = SuccessiveHalving(nlp_hub_small, fine_tuner, config=config).run(
            nlp_hub_small.model_names, task
        )

        # Cost ordering: 2PH < SH < BF (the paper's Table VI shape).
        assert two_phase.total_cost < halving.total_cost
        assert halving.total_cost < brute_force.total_cost
        # The selected model is competitive with the brute-force winner.
        assert two_phase.selected_accuracy >= brute_force.selected_accuracy - 0.15

    def test_selected_model_not_a_weak_checkpoint(self, nlp_artifacts, fine_tuner):
        """The two-phase pipeline should never pick the out-of-domain checkpoints."""
        selector = TwoPhaseSelector(nlp_artifacts, fine_tuner=fine_tuner)
        weak = {
            "aliosm/sha3bor-metre-detector-arabertv2-base",
            "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi",
        }
        for target in ("mnli", "boolq"):
            result = selector.select(target, top_k=6)
            assert result.selected_model not in weak

    def test_recall_covers_strong_models(self, nlp_artifacts, fine_tuner):
        selector = TwoPhaseSelector(nlp_artifacts, fine_tuner=fine_tuner)
        recall = selector.recall_only("mnli", top_k=6)
        strong = {"roberta-base", "bert-base-uncased", "ishan/bert-base-uncased-mnli",
                  "Jeevesh8/feather_berts_46", "albert-base-v2", "distilbert-base-uncased"}
        assert len(set(recall.recalled_models) & strong) >= 3


class TestCvEndToEnd:
    def test_select_all_cv_targets(self, cv_selector, cv_hub_small):
        for target in ("beans", "medmnist_v2"):
            result = cv_selector.select(target, top_k=5)
            assert result.selected_model in cv_hub_small.model_names
            assert 0.0 <= result.selected_accuracy <= 1.0
            assert result.total_cost < len(cv_hub_small) * 3

    def test_stage_survivor_counts_never_increase(self, cv_selector):
        result = cv_selector.select("beans", top_k=5)
        sizes = [len(stage.surviving_models) for stage in result.selection.stages]
        assert all(later <= earlier for earlier, later in zip(sizes, sizes[1:]))
        assert sizes[-1] == 1

    def test_runtime_accounting_consistent(self, cv_selector):
        result = cv_selector.select("beans", top_k=5)
        # Runtime equals the sum over stages of survivors-at-training-time.
        stage_sizes = []
        previous = len(result.recall.recalled_models)
        for stage in result.selection.stages:
            stage_sizes.append(previous)
            previous = len(stage.surviving_models)
        assert result.selection.runtime_epochs == sum(stage_sizes)


class TestProxyChoiceAblation:
    def test_alternative_proxy_scores_also_work(self, nlp_artifacts, fine_tuner, nlp_suite_small):
        """The pipeline is proxy-agnostic: swapping LEEP for kNN still recalls
        a competitive candidate set (the paper's future-work direction)."""
        from repro.core.recall import CoarseRecall

        task = nlp_suite_small.task("mnli")
        results = {}
        for proxy in ("leep", "knn"):
            recall = CoarseRecall(
                nlp_artifacts.hub,
                nlp_artifacts.matrix,
                nlp_artifacts.clustering,
                config=RecallConfig(proxy_score=proxy, top_k=6),
            ).recall(task)
            results[proxy] = set(recall.recalled_models)
        # Both candidate sets overlap substantially (they rely on the same
        # prior-accuracy term and cluster structure).
        assert len(results["leep"] & results["knn"]) >= 3
