"""Integration tests for the ``python -m repro`` command-line front-end."""

import io
import json
import subprocess
import sys

import pytest

from repro.cli import build_parser, main

COMMON = ["--scale", "small", "--num-models", "8", "--seed", "0"]


def run_cli(*argv) -> str:
    stream = io.StringIO()
    code = main(list(argv), stream=stream)
    assert code == 0, stream.getvalue()
    return stream.getvalue()


class TestParser:
    def test_module_help_from_clean_checkout(self):
        # The acceptance-criterion invocation: `python -m repro select --help`.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "select", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "--target" in result.stdout
        assert "--parallel" in result.stdout

    @pytest.mark.parametrize("command", ["select", "batch", "experiments", "bench"])
    def test_every_subcommand_parses_help(self, command):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--help"])
        assert excinfo.value.code == 0

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([])
        assert excinfo.value.code != 0


class TestSelectCommand:
    def test_select_text_output(self):
        out = run_cli("select", "--target", "mnli", "--top-k", "4", *COMMON)
        assert "selected model" in out
        assert "recalled models" in out

    def test_select_json_output(self):
        out = run_cli("select", "--target", "mnli", "--top-k", "4", "--json", *COMMON)
        payload = json.loads(out)
        assert payload["target"] == "mnli"
        assert payload["recalled_models"]
        assert payload["total_cost"] > 0

    def test_select_parallel_matches_serial(self):
        serial = json.loads(
            run_cli("select", "--target", "mnli", "--json", *COMMON)
        )
        threaded = json.loads(
            run_cli(
                "select", "--target", "mnli", "--json", "--parallel", "thread:4",
                *COMMON,
            )
        )
        assert serial["selected_model"] == threaded["selected_model"]
        assert serial["total_cost"] == threaded["total_cost"]

    def test_unknown_target_exits_with_error(self):
        stream = io.StringIO()
        code = main(["select", "--target", "nope", *COMMON], stream=stream)
        assert code == 2


class TestBatchCommand:
    def test_batch_default_targets(self):
        out = run_cli("batch", *COMMON)
        assert "totals:" in out

    def test_batch_json(self):
        out = run_cli("batch", "--targets", "mnli", "boolq", "--json", *COMMON)
        payload = json.loads(out)
        assert set(payload["targets"]) == {"mnli", "boolq"}
        assert payload["totals"]["num_tasks"] == 2


class TestZooCommand:
    def test_zoo_add_reports_incremental_update(self):
        out = run_cli("zoo", "add", "--models", "bondi/bert-semaphore-prediction-w4",
                      *COMMON)
        assert "zoo update" in out
        assert "v0-" in out and "v1-" in out
        assert "models       : 8 -> 9" in out

    def test_zoo_add_verify_confirms_equivalence(self):
        out = run_cli("zoo", "add", "--models", "bondi/bert-semaphore-prediction-w4",
                      "--verify", *COMMON)
        assert "bitwise-equal to a from-scratch rebuild" in out

    def test_zoo_remove_json(self):
        out = run_cli("zoo", "remove", "--models", "albert-base-v2", "--json",
                      *COMMON)
        payload = json.loads(out)
        assert payload["removed"] == ["albert-base-v2"]
        assert payload["num_models"] == 7
        assert payload["new_version"].startswith("v1-")

    def test_zoo_refresh_combined(self):
        out = run_cli(
            "zoo", "refresh", "--add", "bondi/bert-semaphore-prediction-w4",
            "--remove", "albert-base-v2", "--json", *COMMON,
        )
        payload = json.loads(out)
        assert payload["added"] and payload["removed"]
        assert payload["num_models"] == 8

    def test_zoo_refresh_without_changes_is_an_error(self):
        stream = io.StringIO()
        code = main(["zoo", "refresh", *COMMON], stream=stream)
        assert code == 2

    def test_zoo_unknown_model_is_friendly_error(self):
        stream = io.StringIO()
        code = main(["zoo", "remove", "--models", "nope", *COMMON], stream=stream)
        assert code == 2

    def test_zoo_build_dense_reports_memory_backing(self):
        out = run_cli("zoo", "build", *COMMON)
        assert "offline build : 8 nlp models" in out
        assert "(memory)" in out

    def test_zoo_build_ooc_spills_to_store(self, tmp_path):
        out = run_cli(
            "zoo", "build", "--ooc", "--max-memory", "16",
            "--store-dir", str(tmp_path / "store"), *COMMON,
        )
        assert "(memmap)" in out
        assert str(tmp_path / "store") in out
        assert "memory budget : 17 MB in flight" in out
        assert list((tmp_path / "store").glob("*.npy"))

    def test_zoo_build_json_matches_dense_and_ooc(self, tmp_path):
        dense = json.loads(run_cli("zoo", "build", "--json", *COMMON))
        spilled = json.loads(run_cli(
            "zoo", "build", "--json", "--ooc",
            "--store-dir", str(tmp_path / "store"), *COMMON,
        ))
        assert dense["similarity_backing"] == "memory"
        assert spilled["similarity_backing"] == "memmap"
        assert "store_path" in spilled and "store_path" not in dense
        # Same offline phase either way.
        assert dense["num_clusters"] == spilled["num_clusters"]
        assert dense["num_models"] == spilled["num_models"] == 8


class TestExperimentsCommand:
    def test_single_experiment_runs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "small")
        out_file = tmp_path / "report.txt"
        out = run_cli(
            "experiments", "--only", "table3", "--modalities", "cv",
            "--scale", "small", "--out", str(out_file),
        )
        assert "wrote 1 experiment block(s)" in out
        assert "table3" in out_file.read_text()


class TestBenchCommand:
    def test_bench_runs_and_reports_identical(self):
        out = run_cli(
            "bench", "--backend", "thread", "--workers", "2", "--tasks", "3",
            *COMMON,
        )
        assert "identical results: True" in out
        assert "serial" in out


class TestParallelEnvVar:
    def test_bench_honors_repro_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "thread:2")
        out = run_cli("bench", "--tasks", "2", "--scale", "small",
                      "--num-models", "8")
        assert "thread:2" in out

    def test_experiments_unknown_id_is_friendly_error(self):
        stream = io.StringIO()
        code = main(["experiments", "--only", "fig99", "--scale", "small"],
                    stream=stream)
        assert code == 2


class TestCliErrorPaths:
    """Exit codes and stderr messages of the CLI's failure modes."""

    def test_unknown_modality_exits_2_with_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["select", "--target", "mnli", "--modality", "audio"]
            )
        assert excinfo.value.code == 2
        assert "invalid choice: 'audio'" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["warp:4", "thread:zero", "thread:0", ":"])
    def test_malformed_parallel_spec_exits_2(self, spec, capsys):
        stream = io.StringIO()
        code = main(
            ["select", "--target", "mnli", "--parallel", spec, *COMMON],
            stream=stream,
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_zoo_remove_nonexistent_model_exits_2(self, capsys):
        stream = io.StringIO()
        code = main(
            ["zoo", "remove", "--models", "no-such/model", *COMMON],
            stream=stream,
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no-such/model" in err

    def test_zoo_refresh_without_changes_exits_2(self, capsys):
        stream = io.StringIO()
        code = main(["zoo", "refresh", *COMMON], stream=stream)
        assert code == 2
        assert "zoo refresh needs" in capsys.readouterr().err

    def test_unknown_target_message_names_known_datasets(self, capsys):
        stream = io.StringIO()
        code = main(["select", "--target", "nope", *COMMON], stream=stream)
        assert code == 2
        assert "unknown target dataset" in capsys.readouterr().err
