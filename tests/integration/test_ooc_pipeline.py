"""Integration tests: the out-of-core offline phase through build/refresh/serve."""

import numpy as np
import pytest

from repro.cache import fingerprint_matrix
from repro.core.config import PipelineConfig, SimilarityConfig
from repro.core.pipeline import OfflineArtifacts
from repro.data.workloads import DataScale, suite_for_modality
from repro.service import SelectionService
from repro.store import MatrixStore
from repro.zoo.hub import ModelHub


@pytest.fixture(scope="module")
def small_world():
    suite = suite_for_modality("nlp", seed=0, scale=DataScale.small())
    hub = ModelHub(suite, seed=0)
    return suite, hub.subset(hub.model_names[:8])


def _configs(tmp_path):
    from dataclasses import replace

    dense = PipelineConfig.for_modality("nlp")
    spilled = replace(
        dense,
        similarity=SimilarityConfig(
            spill_threshold_bytes=0,
            max_bytes_in_flight=8192,
            store_dir=str(tmp_path / "store"),
        ),
    )
    return dense, spilled


def test_build_spilled_equals_dense(small_world, tmp_path):
    suite, hub = small_world
    dense_config, spilled_config = _configs(tmp_path)
    dense = OfflineArtifacts.build(hub, suite, config=dense_config, cache=False)
    spilled = OfflineArtifacts.build(hub, suite, config=spilled_config, cache=False)
    assert isinstance(spilled.clustering.similarity, np.memmap)
    assert np.array_equal(dense.matrix.values, spilled.matrix.values)
    assert np.array_equal(
        dense.clustering.similarity, spilled.clustering.similarity
    )
    assert np.array_equal(
        dense.clustering.assignment.labels, spilled.clustering.assignment.labels
    )
    assert dense.clustering.representatives == spilled.clustering.representatives
    # The spilled artifacts really live in the configured store.
    store = MatrixStore(tmp_path / "store")
    assert store.bytes_stored() > 0


def test_refresh_spilled_equals_dense(small_world, tmp_path):
    suite, hub = small_world
    dense_config, spilled_config = _configs(tmp_path)
    dense = OfflineArtifacts.build(hub, suite, config=dense_config, cache=False)
    spilled = OfflineArtifacts.build(hub, suite, config=spilled_config, cache=False)

    full_hub = ModelHub(suite, seed=0)
    addition = full_hub.model_names[8]
    removal = hub.model_names[0]
    dense_result = dense.refresh(added=[addition], removed=[removal], cache=False)
    spilled_result = spilled.refresh(added=[addition], removed=[removal], cache=False)
    dense_after, spilled_after = dense_result.artifacts, spilled_result.artifacts
    assert np.array_equal(dense_after.matrix.values, spilled_after.matrix.values)
    assert np.array_equal(
        dense_after.clustering.similarity, spilled_after.clustering.similarity
    )
    assert np.array_equal(
        dense_after.clustering.assignment.labels,
        spilled_after.clustering.assignment.labels,
    )
    assert dense_result.reclustered == spilled_result.reclustered
    assert dense_result.staleness == spilled_result.staleness
    assert isinstance(spilled_after.clustering.similarity, np.memmap)


def test_refresh_evicts_superseded_spilled_artifacts(small_world, tmp_path):
    suite, hub = small_world
    _, spilled_config = _configs(tmp_path)
    artifacts = OfflineArtifacts.build(hub, suite, config=spilled_config, cache=False)
    store = MatrixStore(tmp_path / "store")
    old_fragment = fingerprint_matrix(artifacts.matrix)
    assert store.evict_matching(old_fragment) > 0  # present before refresh
    # Rebuild (store entry was just evicted by the probe) and refresh with
    # eviction enabled: the superseded version's files must be gone.
    artifacts = OfflineArtifacts.build(hub, suite, config=spilled_config, cache=False)
    artifacts.refresh(removed=[hub.model_names[0]], cache=False, evict_superseded=True)
    assert store.evict_matching(old_fragment) == 0


def test_cluster_keeps_precomputed_memmap_similarity_out_of_core(small_world, tmp_path):
    """A canonical spilled similarity is clustered without densifying."""
    from repro.core.model_clustering import ModelClusterer
    from repro.core.performance import build_performance_matrix
    from repro.core.similarity import (
        performance_similarity_matrix,
        performance_similarity_matrix_ooc,
    )

    suite, hub = small_world
    _, spilled_config = _configs(tmp_path)
    similarity_config = spilled_config.similarity
    matrix = build_performance_matrix(hub, suite)
    spilled_similarity = performance_similarity_matrix_ooc(
        matrix, config=similarity_config, cache=False
    )
    clustering = ModelClusterer().cluster(
        matrix,
        similarity=spilled_similarity,
        cache=False,
        similarity_config=similarity_config,
    )
    assert isinstance(clustering.similarity, np.memmap)
    dense = ModelClusterer().cluster(
        matrix,
        similarity=performance_similarity_matrix(matrix, cache=False),
        cache=False,
    )
    assert np.array_equal(
        dense.assignment.labels, clustering.assignment.labels
    )
    # The derived distance landed in the store under its canonical key.
    from repro.cache import distance_key, similarity_key

    store = MatrixStore(tmp_path / "store")
    key = distance_key(similarity_key(matrix, method="performance", top_k=5))
    assert store.open(key) is not None


def test_evicting_never_creates_the_store_directory(tmp_path):
    from repro.core.config import SimilarityConfig
    from repro.core.pipeline import evict_spilled_artifacts

    missing = tmp_path / "never-created"
    config = SimilarityConfig(store_dir=str(missing))
    assert evict_spilled_artifacts(config, "anything") == 0
    assert not missing.exists()


def test_service_serves_from_memmapped_artifacts(small_world, tmp_path):
    suite, hub = small_world
    _, spilled_config = _configs(tmp_path)
    artifacts = OfflineArtifacts.build(hub, suite, config=spilled_config, cache=False)
    service = SelectionService(artifacts)
    assert service.stats()["similarity_backing"] == "memmap"
    result = service.select(service.target_names[0])
    assert result.selected_model in hub.model_names

    dense_service = SelectionService.from_hub(hub, suite)
    dense_result = dense_service.select(dense_service.target_names[0])
    assert result.selected_model == dense_result.selected_model
    assert result.selected_accuracy == dense_result.selected_accuracy
    assert dense_service.stats()["similarity_backing"] == "memory"
