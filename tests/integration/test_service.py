"""Integration tests for the long-lived SelectionService."""

import threading

import pytest

from repro.core.pipeline import OfflineArtifacts
from repro.core.results import TwoPhaseResult
from repro.service import SelectionService
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def nlp_artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def service(nlp_artifacts):
    return SelectionService(nlp_artifacts)


class TestSelectionService:
    def test_select_returns_two_phase_result(self, service):
        result = service.select("mnli")
        assert isinstance(result, TwoPhaseResult)
        assert result.target_name == "mnli"
        assert result.selected_model in service.artifacts.hub.model_names

    def test_select_matches_bare_selector(self, service, nlp_artifacts):
        from repro.core.pipeline import TwoPhaseSelector

        direct = TwoPhaseSelector(nlp_artifacts).select("mnli")
        served = service.select("mnli")
        assert served.selected_model == direct.selected_model
        assert served.total_cost == direct.total_cost

    def test_select_many(self, service, nlp_suite_small):
        report = service.select_many(nlp_suite_small.target_names)
        assert report.target_names == list(nlp_suite_small.target_names)

    def test_recall_only(self, service):
        result = service.recall("boolq", top_k=3)
        assert len(result.recalled_models) == 3

    def test_target_names(self, service, nlp_suite_small):
        assert service.target_names == list(nlp_suite_small.target_names)

    def test_cluster_summary(self, service):
        summary = service.cluster_summary()
        assert summary["num_models"] == len(service.artifacts.hub)

    def test_stats_accounting(self, nlp_artifacts):
        fresh = SelectionService(nlp_artifacts)
        before = fresh.stats()
        assert before["requests"] == 0 and before["targets_served"] == 0
        result = fresh.select("mnli")
        report = fresh.select_many(["boolq"])
        stats = fresh.stats()
        assert stats["requests"] == 2
        assert stats["targets_served"] == 2
        expected = result.total_cost + report.totals()["total_cost"]
        assert stats["total_epoch_cost"] == pytest.approx(expected)
        assert stats["num_models"] == len(nlp_artifacts.hub)
        assert stats["uptime_seconds"] >= 0
        assert "memory" in stats["cache"]

    def test_parallel_spec_reported(self, nlp_artifacts):
        assert SelectionService(nlp_artifacts).parallel_spec == "serial"
        threaded = SelectionService(nlp_artifacts, parallel="thread:4")
        assert threaded.parallel_spec == "thread:4"

    def test_parallel_service_matches_serial(self, service, nlp_artifacts):
        threaded = SelectionService(nlp_artifacts, parallel="thread:4")
        assert (
            threaded.select("mnli").selected_model
            == service.select("mnli").selected_model
        )

    def test_concurrent_requests_are_consistent(self, nlp_artifacts, nlp_suite_small):
        shared = SelectionService(nlp_artifacts, parallel="thread:2")
        reference = {
            name: shared.select(name).selected_model
            for name in nlp_suite_small.target_names
        }
        results = {}
        errors = []

        def worker(name):
            try:
                results[name] = shared.select(name).selected_model
            except Exception as error:  # pragma: no cover - failure detail
                errors.append((name, error))

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in nlp_suite_small.target_names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == reference
        assert shared.stats()["requests"] == 2 * len(nlp_suite_small.target_names)


class TestFromModality:
    def test_from_modality_small(self):
        service = SelectionService.from_modality("nlp", scale="small", num_models=8)
        assert len(service.artifacts.hub) == 8
        result = service.select(service.target_names[0], top_k=3)
        assert result.selected_model in service.artifacts.hub.model_names

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectionService.from_modality("nlp", scale="huge")
