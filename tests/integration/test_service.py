"""Integration tests for the long-lived SelectionService."""

import threading

import pytest

from repro.core.pipeline import OfflineArtifacts
from repro.core.results import TwoPhaseResult
from repro.service import SelectionService
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def nlp_artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def service(nlp_artifacts):
    return SelectionService(nlp_artifacts)


class TestSelectionService:
    def test_select_returns_two_phase_result(self, service):
        result = service.select("mnli")
        assert isinstance(result, TwoPhaseResult)
        assert result.target_name == "mnli"
        assert result.selected_model in service.artifacts.hub.model_names

    def test_select_matches_bare_selector(self, service, nlp_artifacts):
        from repro.core.pipeline import TwoPhaseSelector

        direct = TwoPhaseSelector(nlp_artifacts).select("mnli")
        served = service.select("mnli")
        assert served.selected_model == direct.selected_model
        assert served.total_cost == direct.total_cost

    def test_select_many(self, service, nlp_suite_small):
        report = service.select_many(nlp_suite_small.target_names)
        assert report.target_names == list(nlp_suite_small.target_names)

    def test_recall_only(self, service):
        result = service.recall("boolq", top_k=3)
        assert len(result.recalled_models) == 3

    def test_target_names(self, service, nlp_suite_small):
        assert service.target_names == list(nlp_suite_small.target_names)

    def test_cluster_summary(self, service):
        summary = service.cluster_summary()
        assert summary["num_models"] == len(service.artifacts.hub)

    def test_stats_accounting(self, nlp_artifacts):
        fresh = SelectionService(nlp_artifacts)
        before = fresh.stats()
        assert before["requests"] == 0 and before["targets_served"] == 0
        result = fresh.select("mnli")
        report = fresh.select_many(["boolq"])
        stats = fresh.stats()
        assert stats["requests"] == 2
        assert stats["targets_served"] == 2
        expected = result.total_cost + report.totals()["total_cost"]
        assert stats["total_epoch_cost"] == pytest.approx(expected)
        assert stats["num_models"] == len(nlp_artifacts.hub)
        assert stats["uptime_seconds"] >= 0
        assert "memory" in stats["cache"]

    def test_parallel_spec_reported(self, nlp_artifacts):
        assert SelectionService(nlp_artifacts).parallel_spec == "serial"
        threaded = SelectionService(nlp_artifacts, parallel="thread:4")
        assert threaded.parallel_spec == "thread:4"

    def test_parallel_service_matches_serial(self, service, nlp_artifacts):
        threaded = SelectionService(nlp_artifacts, parallel="thread:4")
        assert (
            threaded.select("mnli").selected_model
            == service.select("mnli").selected_model
        )

    def test_concurrent_requests_are_consistent(self, nlp_artifacts, nlp_suite_small):
        shared = SelectionService(nlp_artifacts, parallel="thread:2")
        reference = {
            name: shared.select(name).selected_model
            for name in nlp_suite_small.target_names
        }
        results = {}
        errors = []

        def worker(name):
            try:
                results[name] = shared.select(name).selected_model
            except Exception as error:  # pragma: no cover - failure detail
                errors.append((name, error))

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in nlp_suite_small.target_names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == reference
        assert shared.stats()["requests"] == 2 * len(nlp_suite_small.target_names)


class TestScheduledRequests:
    """The submit/poll/result path over the service's epoch scheduler."""

    def test_submit_result_matches_select(self, nlp_artifacts):
        service = SelectionService(nlp_artifacts)
        try:
            direct = service.select("mnli")
            handle = service.submit("mnli")
            scheduled = service.result(handle, timeout=120)
            assert scheduled.selected_model == direct.selected_model
            assert scheduled.selection.stages == direct.selection.stages
            assert scheduled.total_cost == direct.total_cost
        finally:
            service.close()

    def test_poll_streams_progress(self, nlp_artifacts):
        service = SelectionService(nlp_artifacts)
        try:
            handle = service.submit("boolq")
            service.result(handle, timeout=120)
            snapshot = service.poll(handle)
            assert snapshot["state"] == "done"
            assert snapshot["progress"]["stages_completed"]
        finally:
            service.close()

    def test_submit_accounts_like_select(self, nlp_artifacts):
        service = SelectionService(nlp_artifacts)
        try:
            handle = service.submit("mnli")
            result = service.result(handle, timeout=120)
            stats = service.stats()
            assert stats["requests"] == 1
            assert stats["targets_served"] == 1
            assert stats["total_epoch_cost"] == pytest.approx(result.total_cost)
            assert stats["scheduler"]["completed"] == 1
            assert stats["scheduler"]["session_pool"]["misses"] > 0
        finally:
            service.close()

    def test_concurrent_submissions_reuse_sessions(self, nlp_artifacts):
        from repro.sched.config import SchedulerConfig

        service = SelectionService(
            nlp_artifacts,
            scheduler=SchedulerConfig(max_concurrent=4, epoch_budget=4),
        )
        try:
            handles = [service.submit("mnli") for _ in range(3)]
            results = [service.result(h, timeout=120) for h in handles]
            assert len({r.selected_model for r in results}) == 1
            pool = service.stats()["scheduler"]["session_pool"]
            assert pool["epochs_reused"] == 2 * pool["epochs_trained"]
        finally:
            service.close()

    def test_stats_before_first_submit_has_no_scheduler(self, nlp_artifacts):
        service = SelectionService(nlp_artifacts)
        assert service.stats()["scheduler"] is None


class TestStatsRefreshAtomicity:
    """Regression: stats() snapshots counters and zoo_version coherently.

    A refresh swaps the served artifacts, bumps the refresh counter and
    (with a scheduler running) rolls the session-pool version in one
    critical section; a concurrent ``stats()`` must never observe the new
    ``zoo_version`` paired with the old counters or vice versa.  The zoo
    epoch increments exactly once per refresh, so the invariant
    ``zoo_version.epoch == refreshes`` must hold in *every* snapshot.
    """

    def test_stats_never_tear_across_refresh(
        self, nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner
    ):
        artifacts = OfflineArtifacts.build(
            nlp_hub_small.subset(nlp_hub_small.model_names[:8]),
            nlp_suite_small,
            config=test_pipeline_config,
            fine_tuner=fine_tuner,
        )
        service = SelectionService(artifacts)
        spare = [
            name
            for name in nlp_hub_small.model_names
            if name not in artifacts.hub.model_names
        ][0]
        stop = threading.Event()
        torn = []

        def observer():
            while not stop.is_set():
                stats = service.stats()
                epoch = int(stats["zoo_version"].split("-")[0].lstrip("v"))
                if epoch != stats["refreshes"]:
                    torn.append(stats)

        thread = threading.Thread(target=observer)
        thread.start()
        try:
            for _ in range(2):
                service.refresh(added=[spare])
                service.refresh(removed=[spare])
        finally:
            stop.set()
            thread.join()
        assert not torn, f"stats() tore a refresh snapshot: {torn[0]}"
        assert service.stats()["refreshes"] == 4

    def test_refresh_evicts_old_version_sessions(self, nlp_artifacts):
        service = SelectionService(nlp_artifacts)
        try:
            service.result(service.submit("mnli"), timeout=120)
            before = service.stats()["scheduler"]["session_pool"]["sessions"]
            assert before > 0
            removed = service.artifacts.hub.model_names[-1]
            service.refresh(removed=[removed])
            after = service.stats()["scheduler"]["session_pool"]["sessions"]
            assert after == 0  # old-version sessions were swept
        finally:
            service.close()


class TestFromModality:
    def test_from_modality_small(self):
        service = SelectionService.from_modality("nlp", scale="small", num_models=8)
        assert len(service.artifacts.hub) == 8
        result = service.select(service.target_names[0], top_k=3)
        assert result.selected_model in service.artifacts.hub.model_names

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectionService.from_modality("nlp", scale="huge")
