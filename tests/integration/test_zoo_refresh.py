"""Integration tests: incremental zoo refresh through artifacts and service.

The acceptance bar of the dynamic-zoo subsystem: a running
:class:`~repro.service.SelectionService` must serve *correct* selections
across a :meth:`refresh` (equal to a service built from scratch over the
updated repository) **without** rebuilding unaffected artifacts — surviving
checkpoints are not re-fine-tuned, surviving similarity rows are not
recomputed, and the refreshed artifacts land in the cache under their
canonical keys while the superseded version's entries are evicted.
"""

import numpy as np
import pytest

from repro.cache import ArtifactCache, distance_key, similarity_key
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.service import SelectionService
from repro.utils.exceptions import ConfigurationError
from repro.zoo.finetune import FineTuneConfig, FineTuner

ADDED_MODEL = "aviator-neural/bert-base-uncased-sst2"


@pytest.fixture()
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=FineTuner(FineTuneConfig(epochs=3), seed=0),
    )


class TestArtifactRefresh:
    def test_refresh_requires_a_change(self, artifacts):
        with pytest.raises(ConfigurationError):
            artifacts.refresh()

    def test_refresh_matches_from_scratch_build(
        self, artifacts, nlp_suite_small, test_pipeline_config
    ):
        result = artifacts.refresh(
            added=[ADDED_MODEL], removed=[artifacts.hub.model_names[0]], cache=False
        )
        fresh = OfflineArtifacts.build(
            result.artifacts.hub,
            nlp_suite_small,
            config=test_pipeline_config,
            fine_tuner=FineTuner(FineTuneConfig(epochs=3), seed=0),
            cache=False,
        )
        assert result.artifacts.matrix.model_names == fresh.matrix.model_names
        assert np.array_equal(result.artifacts.matrix.values, fresh.matrix.values)
        assert np.array_equal(
            result.artifacts.clustering.similarity, fresh.clustering.similarity
        )
        assert result.new_version.epoch == 1
        assert result.added == [ADDED_MODEL]

    def test_refresh_fine_tunes_only_added_models(self, artifacts, monkeypatch):
        calls = []
        original = FineTuner.fine_tune

        def counting(self, model, task, **kwargs):
            calls.append((model.name, task.name))
            return original(self, model, task, **kwargs)

        monkeypatch.setattr(FineTuner, "fine_tune", counting)
        artifacts.refresh(added=[ADDED_MODEL], cache=False)
        # Exactly one offline run per benchmark dataset, all for the
        # added checkpoint — surviving columns were copied, not rebuilt.
        assert {name for name, _ in calls} == {ADDED_MODEL}
        assert len(calls) == len(artifacts.matrix.dataset_names)

    def test_refresh_warms_and_evicts_cache(self, artifacts, test_pipeline_config):
        cache = ArtifactCache(max_entries=16)
        top_k = test_pipeline_config.clustering.top_k
        old_key = similarity_key(artifacts.matrix, method="performance", top_k=top_k)
        cache.put(old_key, artifacts.clustering.similarity)

        result = artifacts.refresh(added=[ADDED_MODEL], cache=cache)
        new_key = similarity_key(
            result.artifacts.matrix, method="performance", top_k=top_k
        )
        # The refreshed artifacts are warm under their canonical keys ...
        assert cache.get(new_key) is not None
        assert cache.get(distance_key(new_key)) is not None
        # ... and the superseded version's entries were evicted, not reused.
        assert result.evicted_entries >= 1
        assert cache.get(old_key) is None

    def test_incremental_similarity_row_is_not_recomputed(self, artifacts):
        """The cache hit/miss ledger proves the warm path: clustering the
        refreshed matrix again resolves from lookups alone."""
        cache = ArtifactCache(max_entries=16)
        result = artifacts.refresh(added=[ADDED_MODEL], cache=cache)
        from repro.core.model_clustering import ModelClusterer

        misses_before = cache.stats.misses
        clustering = ModelClusterer(artifacts.config.clustering).cluster(
            result.artifacts.matrix, cache=cache
        )
        assert cache.stats.misses == misses_before  # pure cache hits
        assert cache.stats.hits >= 1
        assert np.array_equal(
            clustering.similarity, result.artifacts.clustering.similarity
        )


class TestServiceRefresh:
    def test_selections_correct_across_refresh(self, artifacts, nlp_suite_small):
        service = SelectionService(artifacts)
        before = service.select("mnli").selected_model
        result = service.refresh(
            added=[ADDED_MODEL], removed=[artifacts.hub.model_names[0]]
        )
        served = service.select("mnli")
        # Oracle: a selector built directly over the refreshed artifacts.
        oracle = TwoPhaseSelector(
            result.artifacts, fine_tuner=FineTuner(FineTuneConfig(epochs=3), seed=0)
        ).select("mnli")
        assert served.selected_model == oracle.selected_model
        assert served.total_cost == oracle.total_cost
        assert before in artifacts.hub.model_names  # old epoch untouched

    def test_refresh_updates_stats_and_version(self, artifacts):
        service = SelectionService(artifacts)
        v0 = service.stats()["zoo_version"]
        assert v0.startswith("v0-")
        assert service.stats()["refreshes"] == 0
        result = service.refresh(added=[ADDED_MODEL])
        stats = service.stats()
        assert stats["refreshes"] == 1
        assert stats["zoo_version"] == result.new_version.key
        assert stats["zoo_version"].startswith("v1-")
        assert stats["num_models"] == len(artifacts.hub) + 1

    def test_refresh_equivalence_holds_for_non_zero_seed(self):
        """Regression: the refresh must use the *offline* tuner, not the
        online selector's seed-keyed one — with `seed=1` the two diverge,
        and mixing them silently broke incremental == from-scratch."""
        service = SelectionService.from_modality(
            "nlp", scale="small", num_models=8, seed=1
        )
        # A catalogue model beyond the served 8 (ADDED_MODEL is within them).
        result = service.refresh(added=["bondi/bert-semaphore-prediction-w4"])
        fresh = OfflineArtifacts.build(
            result.artifacts.hub,
            result.artifacts.suite,
            config=result.artifacts.config,
            cache=False,
        )
        assert np.array_equal(result.artifacts.matrix.values, fresh.matrix.values)
        assert np.array_equal(
            result.artifacts.clustering.similarity, fresh.clustering.similarity
        )

    def test_refresh_does_not_rebuild_survivors(self, artifacts, monkeypatch):
        service = SelectionService(artifacts)
        calls = []
        original = FineTuner.fine_tune

        def counting(self, model, task, **kwargs):
            calls.append(model.name)
            return original(self, model, task, **kwargs)

        monkeypatch.setattr(FineTuner, "fine_tune", counting)
        service.refresh(added=[ADDED_MODEL])
        offline_calls = [name for name in calls if name != ADDED_MODEL]
        assert not offline_calls  # surviving checkpoints were never touched
