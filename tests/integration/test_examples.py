"""Integration tests for the example scripts.

Each example must run end to end (with the ``--small`` flag) and produce the
output sections its docstring promises.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--small", "--top-k", "6")
        assert "selected model" in out
        assert "total cost" in out

    def test_nlp_model_selection(self):
        out = run_example("nlp_model_selection.py", "--small", "--target", "boolq")
        assert "brute force" in out
        assert "two-phase (CR+FS)" in out
        assert "speedup" in out

    def test_cv_model_selection(self):
        out = run_example("cv_model_selection.py", "--small", "--target", "beans")
        assert "Recalled candidates" in out
        assert "Selected checkpoint" in out

    def test_custom_proxy_score(self):
        out = run_example("custom_proxy_score.py", "--small")
        assert "centroid" in out
        assert "leep" in out

    def test_reproduce_paper_subset(self):
        out = run_example(
            "reproduce_paper.py", "--small", "--only", "table3", "--modalities", "cv"
        )
        assert "Table III" in out
        assert "finished in" in out
