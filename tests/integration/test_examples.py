"""Integration tests for the example scripts.

Every script under ``examples/`` must run end to end (with fast flags) and
produce the output its docstring promises.  The scripts are discovered from
the directory, so adding an example without registering smoke arguments
here fails ``test_every_example_is_covered`` — quickstart docs cannot
silently rot.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script name -> (argv for a fast run, substrings its output must contain).
SCRIPT_SMOKE_ARGS = {
    "quickstart.py": (
        ["--small", "--top-k", "6"],
        ["selected model", "total cost"],
    ),
    "nlp_model_selection.py": (
        ["--small", "--target", "boolq"],
        ["brute force", "two-phase (CR+FS)", "speedup"],
    ),
    "cv_model_selection.py": (
        ["--small", "--target", "beans"],
        ["Recalled candidates", "Selected checkpoint"],
    ),
    "custom_proxy_score.py": (
        ["--small"],
        ["centroid", "leep"],
    ),
    "reproduce_paper.py": (
        ["--small", "--only", "table3", "--modalities", "cv"],
        ["Table III", "finished in"],
    ),
}


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_every_example_is_covered():
    """Each script in examples/ must have registered smoke arguments."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(SCRIPT_SMOKE_ARGS), (
        "examples/ and SCRIPT_SMOKE_ARGS disagree; register smoke arguments "
        f"for new scripts. only on disk: {sorted(on_disk - set(SCRIPT_SMOKE_ARGS))}, "
        f"only registered: {sorted(set(SCRIPT_SMOKE_ARGS) - on_disk)}"
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SCRIPT_SMOKE_ARGS))
def test_example_runs(name):
    args, expected_fragments = SCRIPT_SMOKE_ARGS[name]
    out = run_example(name, *args)
    for fragment in expected_fragments:
        assert fragment in out, f"{name}: expected {fragment!r} in output"
