"""Integration tests for `python -m repro serve` and the scheduled CLI paths."""

import io
import json
import socket
import threading

import pytest

from repro.cli import build_parser, main
from repro.serving import EXIT_SCHEDULER, ServeFrontEnd, error_payload
from repro.utils.exceptions import BudgetExhaustedError

COMMON = ["--scale", "small", "--num-models", "8", "--seed", "0"]


def parse_lines(text):
    return [json.loads(line) for line in text.strip().splitlines() if line.strip()]


@pytest.fixture(scope="module")
def service():
    from repro.sched.config import SchedulerConfig
    from repro.service import SelectionService

    service = SelectionService.from_modality(
        "nlp", scale="small", num_models=8,
        scheduler=SchedulerConfig(max_concurrent=2, epoch_budget=4),
    )
    yield service
    service.close()


class TestServeFlagValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ["--max-concurrent", "0"],
            ["--max-concurrent", "nope"],
            ["--epoch-budget", "-3"],
            ["--max-queue", "0"],
            ["--timeout", "0"],
            ["--timeout", "-1.5"],
            ["--policy", "lifo"],
        ],
    )
    def test_invalid_flags_exit_2_with_message(self, flags, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", *COMMON, *flags])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flags[0].lstrip("-").replace("-", "_") in err.replace("-", "_")

    def test_serve_help_parses(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "--help"])
        assert excinfo.value.code == 0


class TestServeStdin:
    def test_full_protocol_roundtrip(self, monkeypatch):
        lines = [
            json.dumps({"op": "select", "target": "mnli", "id": "a", "top_k": 4}),
            json.dumps({"op": "select", "target": "mnli", "id": "b", "top_k": 4}),
            json.dumps({"op": "stats"}),
            json.dumps({"op": "bogus"}),
            "not json at all",
            json.dumps({"op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        out = io.StringIO()
        code = main(
            ["serve", *COMMON, "--max-concurrent", "2", "--epoch-budget", "4"],
            stream=out,
        )
        assert code == 0
        events = parse_lines(out.getvalue())
        by_event = {}
        for event in events:
            by_event.setdefault(event["event"], []).append(event)
        assert by_event["serving"][0]["max_concurrent"] == 2
        accepted = {e["id"] for e in by_event["accepted"]}
        assert accepted == {"a", "b"}
        results = {e["id"]: e for e in by_event["result"]}
        assert set(results) == {"a", "b"}
        # Identical requests multiplexed over the scheduler answer
        # identically (and stream per-stage progress on the way).
        assert results["a"]["selected_model"] == results["b"]["selected_model"]
        assert results["a"]["latency_seconds"] >= 0
        assert by_event["progress"]
        assert "scheduler" in by_event["stats"][0]["stats"]
        assert len(by_event["error"]) == 2  # unknown op + malformed JSON

    def test_poll_op_reports_status(self, service):
        front = ServeFrontEnd(service)
        out = io.StringIO()
        lines = [
            json.dumps({"op": "select", "target": "boolq", "id": "x"}),
            json.dumps({"op": "poll", "id": "x"}),
            json.dumps({"op": "poll", "id": "ghost"}),
        ]
        assert front.serve_stream(lines, out) == 0
        events = parse_lines(out.getvalue())
        status = [e for e in events if e["event"] == "status"]
        assert status and status[0]["id"] == "x"
        unknown = [e for e in events if e["event"] == "error"]
        assert unknown and "ghost" in unknown[0]["message"]

    def test_select_without_target_is_an_error_event(self, service):
        front = ServeFrontEnd(service)
        out = io.StringIO()
        front.serve_stream([json.dumps({"op": "select", "id": "a"})], out)
        events = parse_lines(out.getvalue())
        assert events[0]["event"] == "error"
        assert "target" in events[0]["message"]

    def test_admission_failure_is_a_failed_event(self, service):
        front = ServeFrontEnd(service)
        out = io.StringIO()
        lines = [
            json.dumps(
                {"op": "select", "target": "mnli", "id": "q", "epoch_quota": 1}
            ),
        ]
        front.serve_stream(lines, out)
        events = parse_lines(out.getvalue())
        failed = [e for e in events if e["event"] == "failed"]
        assert failed and failed[0]["error"]["code"] == "budget_exhausted"


class TestServeTcp:
    def test_tcp_roundtrip(self, service):
        front = ServeFrontEnd(service)
        server = front.serve_tcp("127.0.0.1", 0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                sock.sendall(
                    (json.dumps({"op": "select", "target": "mnli", "id": "t1"})
                     + "\n" + json.dumps({"op": "shutdown"}) + "\n").encode()
                )
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
            events = parse_lines(b"".join(chunks).decode())
            kinds = [e["event"] for e in events]
            assert "accepted" in kinds and "result" in kinds
            result = next(e for e in events if e["event"] == "result")
            assert result["id"] == "t1"
            assert result["selected_model"]
        finally:
            server.shutdown()
            server.server_close()


class TestScheduledCliPaths:
    def test_select_with_timeout_matches_blocking(self):
        blocking = io.StringIO()
        assert main(["select", "--target", "mnli", "--json", *COMMON],
                    stream=blocking) == 0
        scheduled = io.StringIO()
        assert main(
            ["select", "--target", "mnli", "--json", "--timeout", "600",
             *COMMON],
            stream=scheduled,
        ) == 0
        a, b = json.loads(blocking.getvalue()), json.loads(scheduled.getvalue())
        assert a["selected_model"] == b["selected_model"]
        assert a["total_cost"] == b["total_cost"]

    def test_select_timeout_expiry_exits_3_with_json_error(self):
        out = io.StringIO()
        code = main(
            ["select", "--target", "mnli", "--timeout", "1e-9", *COMMON],
            stream=out,
        )
        assert code == EXIT_SCHEDULER
        payload = json.loads(out.getvalue())
        assert payload["error"]["code"] == "timeout"

    def test_batch_with_max_queue_runs_scheduled(self):
        out = io.StringIO()
        code = main(
            ["batch", "--targets", "mnli", "boolq", "--json",
             "--max-queue", "4", *COMMON],
            stream=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert set(payload["targets"]) == {"mnli", "boolq"}

    def test_error_payload_codes(self):
        payload = error_payload(BudgetExhaustedError("over"))
        assert payload["error"]["code"] == "budget_exhausted"
        assert payload["error"]["type"] == "BudgetExhaustedError"
