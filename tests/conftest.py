"""Shared fixtures for the test suite.

Expensive artifacts (suites, hubs, performance matrices) are built once per
session on deliberately reduced configurations: the small data scale, a
subset of benchmark datasets and a subset of the model catalogue.  This
keeps the full suite fast while still exercising the real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ClusteringConfig, FineSelectionConfig, PipelineConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.performance import build_performance_matrix
from repro.data.workloads import DataScale, WorkloadSuite
from repro.zoo.finetune import FineTuneConfig, FineTuner
from repro.zoo.hub import ModelHub

#: Benchmark subset used by the NLP test suite (keeps the matrix small).
NLP_TEST_BENCHMARKS = ["cola", "qqp", "sst2", "rte", "imdb", "xnli", "trec", "snli"]
NLP_TEST_TARGETS = ["mnli", "boolq"]
#: Model subset for NLP tests: a mix of strong general models, sibling
#: fine-tunes (for clustering) and weak out-of-domain checkpoints.
NLP_TEST_MODELS = [
    "bert-base-uncased",
    "roberta-base",
    "albert-base-v2",
    "distilbert-base-uncased",
    "ishan/bert-base-uncased-mnli",
    "Jeevesh8/feather_berts_46",
    "Jeevesh8/bert_ft_qqp-68",
    "Jeevesh8/bert_ft_qqp-9",
    "connectivity/bert_ft_qqp-1",
    "Jeevesh8/bert_ft_cola-88",
    "aliosm/sha3bor-metre-detector-arabertv2-base",
    "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi",
]

CV_TEST_BENCHMARKS = ["cifar10", "mnist", "food101", "fer2013", "cats_vs_dogs"]
CV_TEST_TARGETS = ["beans", "medmnist_v2"]
CV_TEST_MODELS = [
    "google/vit-base-patch16-224",
    "google/vit-base-patch16-384",
    "facebook/deit-base-patch16-224",
    "microsoft/beit-base-patch16-224",
    "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-6e-05",
    "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-7e-05",
    "sail/poolformer_m36",
    "oschamp/vit-artworkclassifier",
    "nateraw/vit-age-classifier",
    "mrgiraffe/vit-large-dataset-model-v3",
]

TEST_EPOCHS = 3


@pytest.fixture(scope="session")
def rng():
    """Deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def nlp_suite_small():
    """Reduced NLP workload suite (8 benchmarks, 2 targets, small splits)."""
    return WorkloadSuite(
        "nlp",
        seed=0,
        scale=DataScale.small(),
        benchmark_names=NLP_TEST_BENCHMARKS,
        target_names=NLP_TEST_TARGETS,
    )


@pytest.fixture(scope="session")
def cv_suite_small():
    """Reduced CV workload suite (5 benchmarks, 2 targets, small splits)."""
    return WorkloadSuite(
        "cv",
        seed=0,
        scale=DataScale.small(),
        benchmark_names=CV_TEST_BENCHMARKS,
        target_names=CV_TEST_TARGETS,
    )


@pytest.fixture(scope="session")
def nlp_hub_small(nlp_suite_small):
    """Reduced NLP model hub (12 checkpoints)."""
    hub = ModelHub(nlp_suite_small, seed=0)
    return hub.subset(NLP_TEST_MODELS)


@pytest.fixture(scope="session")
def cv_hub_small(cv_suite_small):
    """Reduced CV model hub (10 checkpoints)."""
    hub = ModelHub(cv_suite_small, seed=0)
    return hub.subset(CV_TEST_MODELS)


@pytest.fixture(scope="session")
def fine_tuner():
    """Fine-tuner shared by the test suite (3-epoch default budget)."""
    return FineTuner(FineTuneConfig(epochs=TEST_EPOCHS), seed=0)


@pytest.fixture(scope="session")
def nlp_matrix_small(nlp_hub_small, nlp_suite_small, fine_tuner):
    """Performance matrix of the reduced NLP hub (built once per session)."""
    return build_performance_matrix(
        nlp_hub_small, nlp_suite_small, fine_tuner=fine_tuner, epochs=TEST_EPOCHS
    )


@pytest.fixture(scope="session")
def cv_matrix_small(cv_hub_small, cv_suite_small, fine_tuner):
    """Performance matrix of the reduced CV hub (built once per session)."""
    return build_performance_matrix(
        cv_hub_small, cv_suite_small, fine_tuner=fine_tuner, epochs=TEST_EPOCHS
    )


@pytest.fixture(scope="session")
def nlp_clustering_small(nlp_matrix_small, nlp_hub_small):
    """Hierarchical performance-based clustering of the reduced NLP hub."""
    clusterer = ModelClusterer(ClusteringConfig())
    return clusterer.cluster(nlp_matrix_small, model_cards=nlp_hub_small.model_cards())


@pytest.fixture(scope="session")
def test_pipeline_config():
    """Pipeline configuration sized for the reduced test hubs."""
    return PipelineConfig(
        fine_selection=FineSelectionConfig(total_epochs=TEST_EPOCHS),
        offline_epochs=TEST_EPOCHS,
    )
