"""Tests for repro.data.tasks."""

import numpy as np
import pytest

from repro.data.domain import DomainSpace
from repro.data.tasks import ClassificationTask, TaskSpec, generate_task
from repro.nn.network import MLPClassifier
from repro.utils.exceptions import ConfigurationError


@pytest.fixture()
def space():
    return DomainSpace(feature_dim=16, num_concepts=8, modality="nlp", rng=0)


def make_spec(space, **overrides):
    defaults = dict(
        name="toy",
        modality="nlp",
        domain=space.random_domain_vector(np.random.default_rng(0)),
        num_classes=3,
        num_train=60,
        num_val=30,
        num_test=30,
    )
    defaults.update(overrides)
    return TaskSpec(**defaults)


class TestTaskSpec:
    def test_difficulty(self, space):
        spec = make_spec(space, noise=1.0, separation=2.0)
        assert spec.difficulty == 0.5

    def test_rejects_single_class(self, space):
        with pytest.raises(ConfigurationError):
            make_spec(space, num_classes=1)

    def test_rejects_too_few_samples(self, space):
        with pytest.raises(ConfigurationError):
            make_spec(space, num_train=2, num_classes=3)

    def test_rejects_invalid_imbalance(self, space):
        with pytest.raises(ConfigurationError):
            make_spec(space, class_imbalance=1.0)

    def test_rejects_non_positive_noise(self, space):
        with pytest.raises(ConfigurationError):
            make_spec(space, noise=0.0)


class TestGenerateTask:
    def test_shapes_and_label_ranges(self, space):
        task = generate_task(make_spec(space), space, rng=0)
        assert task.train.features.shape == (60, space.feature_dim)
        assert task.val.features.shape == (30, space.feature_dim)
        assert task.test.features.shape == (30, space.feature_dim)
        for split in (task.train, task.val, task.test):
            assert split.labels.min() >= 0
            assert split.labels.max() < 3

    def test_every_class_present_in_every_split(self, space):
        task = generate_task(make_spec(space), space, rng=1)
        for split in (task.train, task.val, task.test):
            assert set(split.labels.tolist()) == {0, 1, 2}

    def test_deterministic_given_seed(self, space):
        a = generate_task(make_spec(space), space, rng=5)
        b = generate_task(make_spec(space), space, rng=5)
        assert np.array_equal(a.train.features, b.train.features)

    def test_modality_mismatch_rejected(self, space):
        spec = make_spec(space)
        cv_space = DomainSpace(16, 8, modality="cv", rng=1)
        with pytest.raises(ConfigurationError):
            generate_task(spec, cv_space, rng=0)

    def test_imbalanced_labels_are_skewed(self, space):
        spec = make_spec(space, class_imbalance=0.7, num_train=300)
        task = generate_task(spec, space, rng=2)
        counts = task.train.class_counts(3)
        assert counts[0] > counts[2]

    def test_task_is_learnable_by_linear_head(self, space):
        """The class signal must be recoverable from the raw features."""
        spec = make_spec(space, num_train=150, noise=0.8, separation=2.0)
        task = generate_task(spec, space, rng=3)
        model = MLPClassifier(space.feature_dim, 3, learning_rate=5e-2, rng=0)
        model.fit(task.train.features, task.train.labels, epochs=15)
        assert model.score(task.test.features, task.test.labels) > 0.7

    def test_harder_task_is_harder(self, space):
        """Higher noise-to-separation ratio should lower attainable accuracy."""
        easy_spec = make_spec(space, name="easy", noise=0.5, separation=2.5, num_train=150)
        hard_spec = make_spec(space, name="hard", noise=2.5, separation=0.8, num_train=150)
        scores = {}
        for spec in (easy_spec, hard_spec):
            task = generate_task(spec, space, rng=4)
            model = MLPClassifier(space.feature_dim, 3, learning_rate=5e-2, rng=0)
            model.fit(task.train.features, task.train.labels, epochs=12)
            scores[spec.name] = model.score(task.test.features, task.test.labels)
        assert scores["easy"] > scores["hard"]

    def test_repr_mentions_name(self, space):
        task = generate_task(make_spec(space), space, rng=0)
        assert "toy" in repr(task)
