"""Tests for repro.data.domain.DomainSpace."""

import numpy as np
import pytest

from repro.data.domain import DomainSpace
from repro.utils.exceptions import ConfigurationError


@pytest.fixture()
def space():
    return DomainSpace(feature_dim=16, num_concepts=8, modality="nlp", rng=0)


class TestConstruction:
    def test_basis_is_orthonormal(self, space):
        gram = space.basis @ space.basis.T
        assert np.allclose(gram, np.eye(space.num_concepts), atol=1e-8)

    def test_rejects_more_concepts_than_features(self):
        with pytest.raises(ConfigurationError):
            DomainSpace(feature_dim=4, num_concepts=8)

    def test_rejects_too_few_concepts(self):
        with pytest.raises(ConfigurationError):
            DomainSpace(feature_dim=8, num_concepts=1)

    def test_deterministic_given_seed(self):
        a = DomainSpace(16, 8, rng=3).basis
        b = DomainSpace(16, 8, rng=3).basis
        assert np.array_equal(a, b)


class TestProjection:
    def test_project_lift_roundtrip_inside_subspace(self, space):
        coords = np.random.default_rng(0).normal(size=(5, space.num_concepts))
        lifted = space.lift(coords)
        assert np.allclose(space.project(lifted), coords, atol=1e-8)

    def test_project_shape(self, space):
        out = space.project(np.ones((3, space.feature_dim)))
        assert out.shape == (3, space.num_concepts)


class TestDomainVectors:
    def test_random_domain_is_normalised(self, space):
        vector = space.random_domain_vector(np.random.default_rng(0))
        assert np.all(vector >= 0)
        assert np.isclose(vector.sum(), 1.0)

    def test_anchor_pulls_towards_anchor(self, space):
        rng = np.random.default_rng(0)
        anchor = space.random_domain_vector(rng, concentration=0.4)
        free = space.random_domain_vector(np.random.default_rng(1))
        anchored = space.random_domain_vector(
            np.random.default_rng(1), anchor=anchor, anchor_weight=0.9
        )
        assert DomainSpace.domain_affinity(anchored, anchor) > DomainSpace.domain_affinity(
            free, anchor
        )

    def test_normalize_rejects_wrong_shape(self, space):
        with pytest.raises(ConfigurationError):
            space.normalize_domain(np.ones(3))

    def test_normalize_rejects_zero_mass(self, space):
        with pytest.raises(ConfigurationError):
            space.normalize_domain(np.zeros(space.num_concepts))

    def test_affinity_bounds(self, space):
        rng = np.random.default_rng(2)
        a = space.random_domain_vector(rng)
        b = space.random_domain_vector(rng)
        affinity = DomainSpace.domain_affinity(a, b)
        assert 0.0 <= affinity <= 1.0
        assert np.isclose(DomainSpace.domain_affinity(a, a), 1.0)

    def test_affinity_zero_vector(self):
        assert DomainSpace.domain_affinity(np.zeros(4), np.ones(4)) == 0.0
