"""Tests for repro.data.workloads."""

import numpy as np
import pytest

from repro.data.domain import DomainSpace
from repro.data.workloads import DataScale, WorkloadSuite, cv_suite, nlp_suite
from repro.utils.exceptions import ConfigurationError, DataError


class TestCatalogues:
    def test_nlp_suite_sizes_match_paper(self):
        suite = nlp_suite(seed=0, scale=DataScale.small())
        assert len(suite.benchmark_names) == 24
        assert suite.target_names == ["tweet_eval", "mnli", "multirc", "boolq"]

    def test_cv_suite_sizes_match_paper(self):
        suite = cv_suite(seed=0, scale=DataScale.small())
        assert len(suite.benchmark_names) == 10
        assert suite.target_names == [
            "chest_xray_classification",
            "medmnist_v2",
            "oxford_flowers",
            "beans",
        ]

    def test_benchmarks_and_targets_disjoint(self):
        suite = nlp_suite(seed=0, scale=DataScale.small())
        assert not set(suite.benchmark_names) & set(suite.target_names)

    def test_invalid_modality(self):
        with pytest.raises(ConfigurationError):
            WorkloadSuite("audio")


class TestTaskAccess:
    def test_task_caching(self):
        suite = nlp_suite(seed=0, scale=DataScale.small())
        assert suite.task("cola") is suite.task("cola")

    def test_unknown_dataset(self):
        suite = nlp_suite(seed=0, scale=DataScale.small())
        with pytest.raises(DataError):
            suite.task("does-not-exist")

    def test_split_sizes_follow_scale(self):
        scale = DataScale(num_train=50, num_val=20, num_test=25)
        suite = nlp_suite(seed=0, scale=scale)
        task = suite.task("sst2")
        assert len(task.train) == 50
        assert len(task.val) == 20
        assert len(task.test) == 25

    def test_benchmark_filtering(self):
        suite = WorkloadSuite(
            "nlp", seed=0, scale=DataScale.small(), benchmark_names=["cola", "sst2"]
        )
        assert suite.benchmark_names == ["cola", "sst2"]

    def test_unknown_filter_name_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSuite("nlp", benchmark_names=["not-a-dataset"])

    def test_iter_tasks_covers_everything(self):
        suite = WorkloadSuite(
            "cv",
            seed=0,
            scale=DataScale.small(),
            benchmark_names=["cifar10", "mnist"],
            target_names=["beans"],
        )
        names = [task.name for task in suite.iter_tasks()]
        assert names == ["cifar10", "mnist", "beans"]


class TestDomainStructure:
    def test_related_targets_are_closer(self):
        """mnli is anchored near xnli/anli; it should be closer to them than average."""
        suite = nlp_suite(seed=0, scale=DataScale.small())
        mnli = suite.spec("mnli").domain
        related = np.mean(
            [
                DomainSpace.domain_affinity(mnli, suite.spec(name).domain)
                for name in ("xnli", "anli", "sick")
            ]
        )
        others = np.mean(
            [
                DomainSpace.domain_affinity(mnli, suite.spec(name).domain)
                for name in suite.benchmark_names
                if name not in ("xnli", "anli", "sick")
            ]
        )
        assert related > others

    def test_reproducible_across_instances(self):
        a = nlp_suite(seed=3, scale=DataScale.small())
        b = nlp_suite(seed=3, scale=DataScale.small())
        assert np.array_equal(a.spec("mnli").domain, b.spec("mnli").domain)
        assert np.array_equal(
            a.task("cola").train.features, b.task("cola").train.features
        )

    def test_different_seeds_differ(self):
        a = nlp_suite(seed=0, scale=DataScale.small())
        b = nlp_suite(seed=1, scale=DataScale.small())
        assert not np.array_equal(a.spec("mnli").domain, b.spec("mnli").domain)

    def test_with_scale_preserves_filters(self):
        suite = WorkloadSuite(
            "nlp", seed=0, scale=DataScale.small(), benchmark_names=["cola", "sst2"]
        )
        resized = suite.with_scale(DataScale(num_train=40, num_val=16, num_test=16))
        assert resized.benchmark_names == ["cola", "sst2"]
        assert len(resized.task("cola").train) == 40
