"""Tests for repro.data.splits.DataSplit."""

import numpy as np
import pytest

from repro.data.splits import DataSplit
from repro.utils.exceptions import DataError


class TestValidation:
    def test_valid_split(self):
        split = DataSplit(np.ones((4, 3)), np.array([0, 1, 0, 1]))
        assert len(split) == 4
        assert split.num_features == 3

    def test_rejects_misaligned(self):
        with pytest.raises(DataError):
            DataSplit(np.ones((4, 3)), np.array([0, 1]))

    def test_rejects_1d_features(self):
        with pytest.raises(DataError):
            DataSplit(np.ones(4), np.array([0, 1, 0, 1]))

    def test_rejects_2d_labels(self):
        with pytest.raises(DataError):
            DataSplit(np.ones((2, 3)), np.array([[0], [1]]))


class TestClassCounts:
    def test_counts(self):
        split = DataSplit(np.ones((5, 2)), np.array([0, 0, 1, 2, 2]))
        assert split.class_counts(4).tolist() == [2, 1, 2, 0]


class TestSubsample:
    def test_size(self):
        split = DataSplit(np.arange(40).reshape(20, 2), np.zeros(20, dtype=int))
        sub = split.subsample(0.5, np.random.default_rng(0))
        assert len(sub) == 10

    def test_rows_come_from_original(self):
        features = np.arange(40).reshape(20, 2)
        split = DataSplit(features, np.zeros(20, dtype=int))
        sub = split.subsample(0.3, np.random.default_rng(0))
        original_rows = {tuple(row) for row in features}
        assert all(tuple(row) in original_rows for row in sub.features)

    def test_invalid_fraction(self):
        split = DataSplit(np.ones((4, 2)), np.zeros(4, dtype=int))
        with pytest.raises(DataError):
            split.subsample(0.0, np.random.default_rng(0))
        with pytest.raises(DataError):
            split.subsample(1.5, np.random.default_rng(0))
