"""Tests for repro.nn.network.MLPClassifier."""

import numpy as np
import pytest

from repro.nn.network import MLPClassifier
from repro.utils.exceptions import ConfigurationError, DataError


def make_blobs(rng, n_per_class=60, num_classes=3, dim=6, separation=4.0):
    """Simple well-separated Gaussian blobs."""
    centers = rng.normal(scale=separation, size=(num_classes, dim))
    features, labels = [], []
    for cls in range(num_classes):
        features.append(centers[cls] + rng.normal(size=(n_per_class, dim)))
        labels.append(np.full(n_per_class, cls))
    return np.vstack(features), np.concatenate(labels)


class TestConstruction:
    def test_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(4, 1)

    def test_rejects_bad_activation(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(4, 2, hidden_dims=(8,), activation="gelu")

    def test_rejects_wrong_feature_dim_at_predict(self):
        model = MLPClassifier(4, 2, rng=0)
        with pytest.raises(DataError):
            model.predict(np.ones((3, 5)))


class TestTraining:
    def test_learns_separable_blobs(self):
        rng = np.random.default_rng(0)
        x, y = make_blobs(rng)
        model = MLPClassifier(x.shape[1], 3, learning_rate=5e-2, rng=0)
        model.fit(x, y, epochs=15)
        assert model.score(x, y) > 0.9

    def test_hidden_layers_work(self):
        rng = np.random.default_rng(1)
        x, y = make_blobs(rng, num_classes=2)
        model = MLPClassifier(x.shape[1], 2, hidden_dims=(16,), rng=0)
        model.fit(x, y, epochs=15)
        assert model.score(x, y) > 0.9

    def test_history_tracks_epochs_and_validation(self):
        rng = np.random.default_rng(2)
        x, y = make_blobs(rng, n_per_class=30)
        model = MLPClassifier(x.shape[1], 3, rng=0)
        history = model.fit(x, y, epochs=4, x_val=x[:20], y_val=y[:20])
        assert history.epochs == 4
        assert len(history.val_accuracy) == 4
        assert len(history.train_loss) == 4

    def test_loss_decreases(self):
        rng = np.random.default_rng(3)
        x, y = make_blobs(rng)
        model = MLPClassifier(x.shape[1], 3, rng=0)
        history = model.fit(x, y, epochs=10)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        x, y = make_blobs(rng, n_per_class=20)
        preds = []
        for _ in range(2):
            model = MLPClassifier(x.shape[1], 3, rng=7)
            model.fit(x, y, epochs=3)
            preds.append(model.predict(x))
        assert np.array_equal(preds[0], preds[1])

    def test_invalid_epochs(self):
        model = MLPClassifier(4, 2, rng=0)
        with pytest.raises(ConfigurationError):
            model.fit(np.ones((4, 4)), np.array([0, 1, 0, 1]), epochs=0)

    def test_misaligned_labels(self):
        model = MLPClassifier(4, 2, rng=0)
        with pytest.raises(DataError):
            model.fit_epoch(np.ones((4, 4)), np.array([0, 1]))


class TestInference:
    def test_predict_proba_rows_sum_to_one(self):
        model = MLPClassifier(4, 3, rng=0)
        probs = model.predict_proba(np.random.default_rng(0).normal(size=(6, 4)))
        assert probs.shape == (6, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_returns_valid_labels(self):
        model = MLPClassifier(4, 3, rng=0)
        preds = model.predict(np.random.default_rng(0).normal(size=(6, 4)))
        assert preds.shape == (6,)
        assert set(preds.tolist()) <= {0, 1, 2}
