"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, Momentum, build_optimizer
from repro.utils.exceptions import ConfigurationError


def quadratic_descent(optimizer, steps=200):
    """Minimise f(x) = ||x||^2 / 2 and return the final parameter."""
    x = np.array([5.0, -3.0])
    params = [x]
    for _ in range(steps):
        grads = [x.copy()]
        optimizer.step(params, grads)
    return params[0]


class TestSGD:
    def test_single_step(self):
        x = np.array([1.0, 2.0])
        SGD(0.1).step([x], [np.array([1.0, 1.0])])
        assert np.allclose(x, [0.9, 1.9])

    def test_converges_on_quadratic(self):
        assert np.linalg.norm(quadratic_descent(SGD(0.1))) < 1e-3

    def test_rejects_misaligned_lists(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1).step([np.zeros(2)], [])

    def test_rejects_non_positive_lr(self):
        with pytest.raises(ConfigurationError):
            SGD(0.0)


class TestMomentum:
    def test_converges_on_quadratic(self):
        assert np.linalg.norm(quadratic_descent(Momentum(0.05, 0.9))) < 1e-3

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            Momentum(0.1, momentum=1.0)

    def test_momentum_accelerates_early_progress(self):
        def run(optimizer, steps=10):
            x = np.array([10.0])
            for _ in range(steps):
                optimizer.step([x], [x.copy()])
            return abs(float(x[0]))

        assert run(Momentum(0.05, 0.9)) < run(SGD(0.05))


class TestAdam:
    def test_converges_on_quadratic(self):
        assert np.linalg.norm(quadratic_descent(Adam(0.3), steps=400)) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta2=-0.1)

    def test_state_shapes_follow_params(self):
        optimizer = Adam(0.01)
        params = [np.zeros((3, 2)), np.zeros(5)]
        grads = [np.ones((3, 2)), np.ones(5)]
        optimizer.step(params, grads)
        assert optimizer._m[0].shape == (3, 2)
        assert optimizer._v[1].shape == (5,)


class TestBuildOptimizer:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("momentum", Momentum), ("adam", Adam)])
    def test_builds_by_name(self, name, cls):
        assert isinstance(build_optimizer(name, 0.1), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_optimizer("lbfgs", 0.1)
