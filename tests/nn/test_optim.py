"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, Momentum, build_optimizer
from repro.utils.exceptions import ConfigurationError


def quadratic_descent(optimizer, steps=200):
    """Minimise f(x) = ||x||^2 / 2 and return the final parameter."""
    x = np.array([5.0, -3.0])
    params = [x]
    for _ in range(steps):
        grads = [x.copy()]
        optimizer.step(params, grads)
    return params[0]


class TestSGD:
    def test_single_step(self):
        x = np.array([1.0, 2.0])
        SGD(0.1).step([x], [np.array([1.0, 1.0])])
        assert np.allclose(x, [0.9, 1.9])

    def test_converges_on_quadratic(self):
        assert np.linalg.norm(quadratic_descent(SGD(0.1))) < 1e-3

    def test_rejects_misaligned_lists(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1).step([np.zeros(2)], [])

    def test_rejects_non_positive_lr(self):
        with pytest.raises(ConfigurationError):
            SGD(0.0)


class TestMomentum:
    def test_converges_on_quadratic(self):
        assert np.linalg.norm(quadratic_descent(Momentum(0.05, 0.9))) < 1e-3

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            Momentum(0.1, momentum=1.0)

    def test_velocity_recursion_matches_closed_form(self):
        """v_t = mu * v_{t-1} - lr * g_t, applied in place, from v_0 = 0."""
        rng = np.random.default_rng(7)
        optimizer = Momentum(0.05, momentum=0.9)
        param = rng.normal(size=(4, 3))
        expected_param = param.copy()
        expected_velocity = np.zeros_like(param)
        for _ in range(5):
            grad = rng.normal(size=(4, 3))
            optimizer.step([param], [grad.copy()])
            expected_velocity = expected_velocity * 0.9 - 0.05 * grad
            expected_param = expected_param + expected_velocity
            assert np.array_equal(optimizer._velocity[0], expected_velocity)
            assert np.array_equal(param, expected_param)

    def test_lazy_velocity_init(self):
        optimizer = Momentum(0.1, momentum=0.5)
        assert optimizer._velocity is None
        param = np.ones(3)
        optimizer.step([param], [np.ones(3)])
        assert optimizer._velocity[0].shape == (3,)

    def test_rejects_misaligned_lists(self):
        with pytest.raises(ConfigurationError):
            Momentum(0.1).step([np.zeros(2)], [np.zeros(2), np.zeros(2)])

    def test_momentum_accelerates_early_progress(self):
        def run(optimizer, steps=10):
            x = np.array([10.0])
            for _ in range(steps):
                optimizer.step([x], [x.copy()])
            return abs(float(x[0]))

        assert run(Momentum(0.05, 0.9)) < run(SGD(0.05))


class TestAdam:
    def test_converges_on_quadratic(self):
        assert np.linalg.norm(quadratic_descent(Adam(0.3), steps=400)) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta2=-0.1)

    def test_state_shapes_follow_params(self):
        optimizer = Adam(0.01)
        params = [np.zeros((3, 2)), np.zeros(5)]
        grads = [np.ones((3, 2)), np.ones(5)]
        optimizer.step(params, grads)
        assert optimizer._m[0].shape == (3, 2)
        assert optimizer._v[1].shape == (5,)

    def test_two_steps_match_closed_form_oracle(self):
        """Kingma & Ba update, hand-unrolled for t = 1, 2 from zero state."""
        lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-8
        rng = np.random.default_rng(11)
        optimizer = Adam(lr, beta1=b1, beta2=b2, epsilon=eps)
        param = rng.normal(size=(2, 3))
        g1 = rng.normal(size=(2, 3))
        g2 = rng.normal(size=(2, 3))

        expected = param.copy()
        m = np.zeros_like(param)
        v = np.zeros_like(param)
        for t, g in ((1, g1), (2, g2)):
            m = m * b1 + (1.0 - b1) * g
            v = v * b2 + (1.0 - b2) * g * g
            m_hat = m / (1.0 - b1**t)
            v_hat = v / (1.0 - b2**t)
            expected = expected - lr * m_hat / (np.sqrt(v_hat) + eps)

        optimizer.step([param], [g1.copy()])
        optimizer.step([param], [g2.copy()])
        assert optimizer._t == 2
        assert np.array_equal(param, expected)
        assert np.array_equal(optimizer._m[0], m)
        assert np.array_equal(optimizer._v[0], v)

    def test_bias_correction_first_step_recovers_gradient_direction(self):
        # With m_hat = g and v_hat = g*g at t=1, the first update is
        # -lr * g / (|g| + eps): unit-magnitude steps along -sign(g).
        optimizer = Adam(0.5)
        param = np.zeros(3)
        grad = np.array([4.0, -0.25, 1e6])
        optimizer.step([param], [grad.copy()])
        assert np.allclose(param, [-0.5, 0.5, -0.5], atol=1e-6)

    def test_rejects_misaligned_lists(self):
        with pytest.raises(ConfigurationError):
            Adam(0.1).step([], [np.zeros(2)])


class TestBuildOptimizer:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("momentum", Momentum), ("adam", Adam)])
    def test_builds_by_name(self, name, cls):
        assert isinstance(build_optimizer(name, 0.1), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_optimizer("lbfgs", 0.1)
