"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import l2_penalty, log_softmax, softmax, softmax_cross_entropy
from repro.utils.exceptions import DataError


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_numerical_stability_with_large_values(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] > 0.99

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_uniform_prediction_loss_is_log_classes(self):
        logits = np.zeros((4, 3))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert np.isclose(loss, np.log(3))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 3, 0])
        _, grad = softmax_cross_entropy(logits, labels)
        numeric = np.zeros_like(logits)
        epsilon = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus = logits.copy()
                plus[i, j] += epsilon
                minus = logits.copy()
                minus[i, j] -= epsilon
                numeric[i, j] = (
                    softmax_cross_entropy(plus, labels)[0]
                    - softmax_cross_entropy(minus, labels)[0]
                ) / (2 * epsilon)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_rejects_empty_batch(self):
        with pytest.raises(DataError):
            softmax_cross_entropy(np.zeros((0, 3)), np.array([], dtype=int))

    def test_rejects_misaligned_labels(self):
        with pytest.raises(DataError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))

    def test_rejects_1d_logits(self):
        with pytest.raises(DataError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))


class TestL2Penalty:
    def test_zero_weight_is_zero(self):
        assert l2_penalty([np.ones((2, 2))], 0.0) == 0.0

    def test_value(self):
        params = [np.array([1.0, 2.0]), np.array([[2.0]])]
        assert np.isclose(l2_penalty(params, 0.1), 0.05 * (1 + 4 + 4))
