"""Tests for repro.nn.batched: stacked kernels vs the serial oracle."""

import numpy as np
import pytest

from repro.nn.batched import (
    FusedSessionGroup,
    StackedHeads,
    StackedOptimizer,
    fused_fit_epoch,
    heads_compatible,
    stacked_predictions,
)
from repro.nn.network import MLPClassifier
from repro.utils.exceptions import ConfigurationError
from repro.zoo.finetune import FineTuneConfig, FineTuner


def make_heads(count, *, optimizer="adam", hidden_dims=(), activation="relu",
               input_dim=12, num_classes=3, l2=1e-4, seed=0):
    return [
        MLPClassifier(
            input_dim=input_dim,
            num_classes=num_classes,
            hidden_dims=hidden_dims,
            activation=activation,
            l2=l2,
            optimizer=optimizer,
            learning_rate=5e-2,
            rng=np.random.default_rng(seed + index),
        )
        for index in range(count)
    ]


def make_clones(count, **kwargs):
    """Two structurally identical head groups (same RNG streams)."""
    return make_heads(count, **kwargs), make_heads(count, **kwargs)


def train_serial(heads, x, y, epochs, batch_size):
    for head in heads:
        for _ in range(epochs):
            head.fit_epoch(x, y, batch_size=batch_size)


def train_fused(heads, x, y, epochs, batch_size):
    stacked = StackedHeads(heads)
    slab = np.stack([x] * len(heads))
    losses, accuracies = [], []
    for _ in range(epochs):
        perms = np.stack([head._rng.permutation(x.shape[0]) for head in heads])
        epoch_losses, epoch_accs = fused_fit_epoch(
            stacked, slab, y, perms, batch_size=batch_size
        )
        losses.append(epoch_losses)
        accuracies.append(epoch_accs)
    stacked.writeback()
    return losses, accuracies


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(42)
    x = rng.normal(size=(50, 12))
    y = rng.integers(0, 3, size=50)
    return x, y


class TestHeadsCompatible:
    def test_same_geometry_is_compatible(self):
        assert heads_compatible(make_heads(3))

    def test_empty_group_is_not(self):
        assert not heads_compatible([])

    def test_mixed_optimizers_are_not(self):
        a = make_heads(1, optimizer="adam")[0]
        b = make_heads(1, optimizer="sgd")[0]
        assert not heads_compatible([a, b])

    def test_mixed_shapes_are_not(self):
        a = make_heads(1, hidden_dims=())[0]
        b = make_heads(1, hidden_dims=(8,))[0]
        assert not heads_compatible([a, b])

    def test_dropout_heads_are_not(self):
        head = MLPClassifier(
            input_dim=12, num_classes=3, hidden_dims=(8,), dropout=0.5,
            rng=np.random.default_rng(0),
        )
        assert not heads_compatible([head, head])

    def test_mixed_adam_clock_is_not(self):
        a, b = make_heads(2)
        a.fit(np.zeros((4, 12)), np.array([0, 1, 2, 0]), epochs=1, batch_size=4)
        assert not heads_compatible([a, b])

    def test_stacked_heads_rejects_incompatible(self):
        a = make_heads(1, optimizer="adam")[0]
        b = make_heads(1, optimizer="sgd")[0]
        with pytest.raises(ConfigurationError):
            StackedHeads([a, b])
        with pytest.raises(ConfigurationError):
            StackedHeads([])


class TestStackedKernelsBitwise:
    @pytest.mark.parametrize("optimizer", ["sgd", "momentum", "adam"])
    @pytest.mark.parametrize("hidden_dims,activation", [
        ((), "relu"),
        ((8,), "relu"),
        ((10, 6), "tanh"),
    ])
    def test_training_matches_serial(self, problem, optimizer, hidden_dims, activation):
        x, y = problem
        serial, fused = make_clones(
            4, optimizer=optimizer, hidden_dims=hidden_dims, activation=activation
        )
        train_serial(serial, x, y, epochs=3, batch_size=16)
        losses, accuracies = train_fused(fused, x, y, epochs=3, batch_size=16)
        for s, (a, b) in enumerate(zip(serial, fused)):
            assert a.history.train_loss == [losses[e][s] for e in range(3)]
            assert a.history.train_accuracy == [accuracies[e][s] for e in range(3)]
            for pa, pb in zip(a.net.params(), b.net.params()):
                assert np.array_equal(pa, pb)

    def test_partial_final_batch(self, problem):
        x, y = problem  # 50 rows, batch 16 -> final batch of 2
        serial, fused = make_clones(3)
        train_serial(serial, x, y, epochs=2, batch_size=16)
        train_fused(fused, x, y, epochs=2, batch_size=16)
        for a, b in zip(serial, fused):
            for pa, pb in zip(a.net.params(), b.net.params()):
                assert np.array_equal(pa, pb)

    def test_writeback_preserves_layer_array_identity(self, problem):
        x, y = problem
        heads = make_heads(2)
        before = [id(p) for head in heads for p in head.net.params()]
        train_fused(heads, x, y, epochs=1, batch_size=16)
        after = [id(p) for head in heads for p in head.net.params()]
        assert before == after

    def test_continuation_after_writeback_matches_serial(self, problem):
        """Serial epochs after fused epochs equal an all-serial run."""
        x, y = problem
        serial, fused = make_clones(3, optimizer="momentum")
        train_serial(serial, x, y, epochs=3, batch_size=16)
        train_fused(fused, x, y, epochs=2, batch_size=16)
        for head in fused:
            head.fit_epoch(x, y, batch_size=16)
        for a, b in zip(serial, fused):
            for pa, pb in zip(a.net.params(), b.net.params()):
                assert np.array_equal(pa, pb)

    def test_stacked_predictions_match_per_head_predict(self, problem):
        x, y = problem
        heads = make_heads(3, hidden_dims=(8,))
        train_serial(heads, x, y, epochs=1, batch_size=16)
        stacked = StackedHeads(heads)
        batch = np.stack([x] * 3)
        fused = stacked_predictions(stacked, batch)
        for s, head in enumerate(heads):
            assert np.array_equal(fused[s], head.predict(x))


class TestStackedOptimizer:
    def test_adopts_existing_moments(self, problem):
        x, y = problem
        serial, fused = make_clones(2, optimizer="adam")
        train_serial(serial, x, y, epochs=1, batch_size=16)
        train_serial(fused, x, y, epochs=1, batch_size=16)
        stacked = StackedOptimizer(fused)
        assert stacked._t == fused[0].optimizer._t
        for s, head in enumerate(fused):
            for mine, theirs in zip(stacked._m, head.optimizer._m):
                assert np.array_equal(mine[s], theirs)

    def test_rejects_mixed_groups(self):
        a = make_heads(1, optimizer="adam")[0]
        b = make_heads(1, optimizer="momentum")[0]
        with pytest.raises(ConfigurationError):
            StackedOptimizer([a, b])
        with pytest.raises(ConfigurationError):
            StackedOptimizer([])

    def test_rejects_misaligned_step(self):
        stacked = StackedOptimizer(make_heads(2, optimizer="sgd"))
        with pytest.raises(ConfigurationError):
            stacked.step([np.zeros(2)], [])


def make_sessions(count, *, optimizer="adam", seed=0):
    from repro.data.workloads import DataScale, WorkloadSuite
    from repro.zoo.hub import ModelHub

    suite = WorkloadSuite(
        "nlp", seed=0, scale=DataScale.small(),
        benchmark_names=["sst2", "cola"], target_names=["mnli"],
    )
    hub = ModelHub(suite, seed=0)
    tuner = FineTuner(FineTuneConfig(epochs=5, optimizer=optimizer), seed=seed)
    task = suite.task("sst2")
    return [tuner.start_session(hub.get(name), task)
            for name in hub.model_names[:count]]


class TestFusedSessionGroup:
    def test_probe_verifies_and_matches_serial(self):
        serial = make_sessions(4)
        fused = make_sessions(4)
        for session in serial:
            session.train_epochs(3)
        report = FusedSessionGroup(fused).advance(3, probe=True)
        assert report.verified and not report.delegated
        assert report.fused_epochs + report.serial_epochs == 4 * 3
        assert report.probe_epochs == 4
        for a, b in zip(serial, fused):
            assert a.curve.train_loss == b.curve.train_loss
            assert a.curve.val_accuracy == b.curve.val_accuracy
            assert a.curve.test_accuracy == b.curve.test_accuracy
            assert a.head.history.train_accuracy == b.head.history.train_accuracy

    def test_unprobed_advance_matches_serial(self):
        serial = make_sessions(3)
        fused = make_sessions(3)
        for session in serial:
            session.train_epochs(2)
        report = FusedSessionGroup(fused).advance(2, probe=False)
        assert report.fused_epochs == 3 * 2
        for a, b in zip(serial, fused):
            assert a.curve.train_loss == b.curve.train_loss
            assert a.curve.val_accuracy == b.curve.val_accuracy

    def test_injected_divergence_delegates_to_serial(self, monkeypatch):
        """A lying kernel must lose to the oracle, not corrupt results."""
        import repro.nn.batched as batched

        serial = make_sessions(3)
        fused = make_sessions(3)
        for session in serial:
            session.train_epochs(3)

        real = batched.fused_fit_epoch

        def lying_fit_epoch(stacked, x, y, perms, *, batch_size):
            losses, accuracies = real(stacked, x, y, perms, batch_size=batch_size)
            return [loss + 1e-9 for loss in losses], accuracies

        monkeypatch.setattr(batched, "fused_fit_epoch", lying_fit_epoch)
        report = FusedSessionGroup(fused).advance(3, probe=True)
        assert report.delegated and not report.verified
        assert report.mismatches
        assert report.fused_epochs == 0
        assert report.serial_epochs == 3 * 3
        # Delegation kept the serial trajectory: results still exact.
        for a, b in zip(serial, fused):
            assert a.curve.train_loss == b.curve.train_loss
            assert a.curve.val_accuracy == b.curve.val_accuracy

    def test_group_rejects_mixed_positions(self):
        sessions = make_sessions(2)
        sessions[0].train_epochs(1)
        with pytest.raises(ConfigurationError):
            FusedSessionGroup(sessions)

    def test_group_rejects_mixed_signatures(self):
        a = make_sessions(1, optimizer="adam")
        b = make_sessions(1, optimizer="sgd")
        with pytest.raises(ConfigurationError):
            FusedSessionGroup(a + b)

    def test_advance_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            FusedSessionGroup(make_sessions(2)).advance(0)
