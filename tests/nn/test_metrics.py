"""Tests for repro.nn.metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix, macro_f1, top_k_accuracy
from repro.utils.exceptions import DataError


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1]), np.array([0, 0])) == 0.5

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            accuracy(np.array([]), np.array([]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            accuracy(np.array([0, 1]), np.array([0]))


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2)
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_total_equals_samples(self):
        y_true = np.array([0, 1, 2, 1, 0])
        y_pred = np.array([0, 2, 2, 1, 1])
        assert confusion_matrix(y_true, y_pred, 3).sum() == 5


class TestMacroF1:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(y, y, 3) == 1.0

    def test_absent_class_skipped(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 1, 1])
        assert macro_f1(y_true, y_pred, 3) == 1.0

    def test_all_wrong_is_zero(self):
        assert macro_f1(np.array([0, 1]), np.array([1, 0]), 2) == 0.0


class TestTopKAccuracy:
    def test_top1_matches_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]])
        y = np.array([0, 1, 1])
        assert np.isclose(top_k_accuracy(y, scores, 1), 2 / 3)

    def test_top_k_equal_classes_is_one(self):
        scores = np.random.default_rng(0).normal(size=(5, 3))
        y = np.array([0, 1, 2, 0, 1])
        assert top_k_accuracy(y, scores, 3) == 1.0

    def test_invalid_k(self):
        with pytest.raises(DataError):
            top_k_accuracy(np.array([0]), np.array([[0.5, 0.5]]), 0)
