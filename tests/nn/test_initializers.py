"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, zeros
from repro.utils.exceptions import ConfigurationError


def test_glorot_uniform_within_limit():
    rng = np.random.default_rng(0)
    weight = glorot_uniform(rng, 100, 50)
    limit = np.sqrt(6.0 / 150)
    assert weight.shape == (100, 50)
    assert np.all(np.abs(weight) <= limit)


def test_he_normal_scale():
    rng = np.random.default_rng(0)
    weight = he_normal(rng, 400, 100)
    assert weight.shape == (400, 100)
    assert np.isclose(weight.std(), np.sqrt(2.0 / 400), rtol=0.1)


def test_zeros_bias():
    assert np.array_equal(zeros(4), np.zeros(4))


def test_get_initializer_lookup():
    assert get_initializer("glorot") is glorot_uniform
    assert get_initializer("he") is he_normal


def test_get_initializer_unknown():
    with pytest.raises(ConfigurationError):
        get_initializer("orthogonal")
