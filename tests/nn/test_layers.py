"""Tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Linear, Relu, Sequential, Tanh
from repro.utils.exceptions import ConfigurationError


def numerical_gradient(function, x, epsilon=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = x[index]
        x[index] = original + epsilon
        plus = function(x)
        x[index] = original - epsilon
        minus = function(x)
        x[index] = original
        grad[index] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_rejects_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 3)

    def test_backward_requires_training_forward(self):
        layer = Linear(4, 3, rng=0)
        layer.forward(np.ones((2, 4)), training=False)
        with pytest.raises(ConfigurationError):
            layer.backward(np.ones((2, 3)))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))

        def loss_of_weight(weight):
            saved = layer.weight.copy()
            layer.weight = weight
            value = float(np.sum(layer.forward(x, training=True) * grad_out))
            layer.weight = saved
            return value

        layer.forward(x, training=True)
        layer.backward(grad_out)
        numeric = numerical_gradient(loss_of_weight, layer.weight.copy())
        assert np.allclose(layer.grad_weight, numeric, atol=1e-4)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x, training=True)
        grad_in = layer.backward(grad_out)

        def loss_of_input(inputs):
            return float(np.sum(layer.forward(inputs, training=True) * grad_out))

        numeric = numerical_gradient(loss_of_input, x.copy())
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_l2_adds_weight_to_gradient(self):
        rng = np.random.default_rng(2)
        plain = Linear(3, 2, rng=np.random.default_rng(2))
        regularised = Linear(3, 2, rng=np.random.default_rng(2), l2=0.5)
        regularised.weight = plain.weight.copy()
        x = rng.normal(size=(4, 3))
        grad_out = np.ones((4, 2))
        plain.forward(x, training=True)
        plain.backward(grad_out)
        regularised.forward(x, training=True)
        regularised.backward(grad_out)
        assert np.allclose(
            regularised.grad_weight, plain.grad_weight + 0.5 * plain.weight
        )

    def test_params_and_grads_aligned(self):
        layer = Linear(3, 2, rng=0)
        layer.forward(np.ones((1, 3)), training=True)
        layer.backward(np.ones((1, 2)))
        params, grads = layer.params(), layer.grads()
        assert len(params) == len(grads) == 2
        for param, grad in zip(params, grads):
            assert param.shape == grad.shape


class TestActivations:
    def test_relu_zeros_negative(self):
        layer = Relu()
        out = layer.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, np.array([[0.0, 2.0]]))

    def test_relu_backward_masks(self):
        layer = Relu()
        layer.forward(np.array([[-1.0, 2.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, np.array([[0.0, 5.0]]))

    def test_tanh_range(self):
        layer = Tanh()
        out = layer.forward(np.array([[-10.0, 0.0, 10.0]]))
        assert np.all(np.abs(out) <= 1.0)

    def test_tanh_gradient_matches_numerical(self):
        layer = Tanh()
        x = np.array([[0.3, -0.7, 1.2]])
        grad_out = np.array([[1.0, 2.0, -1.0]])
        layer.forward(x, training=True)
        grad = layer.backward(grad_out)
        expected = grad_out * (1 - np.tanh(x) ** 2)
        assert np.allclose(grad, expected)

    def test_backward_before_forward_raises(self):
        with pytest.raises(ConfigurationError):
            Relu().backward(np.ones((1, 2)))
        with pytest.raises(ConfigurationError):
            Tanh().backward(np.ones((1, 2)))


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((4, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_scales_kept_units(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((1000, 1))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 300 < kept.size < 700

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_zero_rate_is_identity_in_training(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        assert np.array_equal(layer.forward(x, training=True), x)


class TestSequential:
    def test_forward_composes_layers(self):
        net = Sequential([Linear(4, 8, rng=0), Relu(), Linear(8, 2, rng=1)])
        out = net.forward(np.ones((3, 4)))
        assert out.shape == (3, 2)

    def test_params_collects_all_layers(self):
        net = Sequential([Linear(4, 8, rng=0), Relu(), Linear(8, 2, rng=1)])
        assert len(net.params()) == 4

    def test_backward_shape(self):
        net = Sequential([Linear(4, 8, rng=0), Tanh(), Linear(8, 2, rng=1)])
        net.forward(np.ones((3, 4)), training=True)
        grad = net.backward(np.ones((3, 2)))
        assert grad.shape == (3, 4)
