"""Property-based equivalence of the out-of-core offline phase.

The spill-to-disk paths are only admissible because they are **bitwise**
interchangeable with the in-RAM ones:

* :func:`performance_similarity_matrix_ooc` must equal
  :func:`performance_similarity_matrix` for any shape, ``top_k`` and
  in-flight memory budget (tiling cannot change a single bit — every Eq. 1
  lane is independent of its block mates);
* the tile-wise distance conversion must equal
  :func:`similarity_to_distance` (exact Eq. 1 symmetry makes the dense
  path's ``(d + d.T) / 2`` the identity);
* clustering on the memmapped matrices — streamed threshold quantile,
  scratch-memmap working copy, cached-argmin merge loop — must reproduce
  the in-RAM clustering merge for merge;
* the out-of-core incremental update must equal both the in-RAM
  incremental path and the from-scratch oracle over arbitrary add/remove
  sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.distance import (
    distance_memmap_for,
    similarity_to_distance,
    upper_triangle_values,
)
from repro.core.config import ClusteringConfig, SimilarityConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    performance_similarity_matrix,
    performance_similarity_matrix_ooc,
    update_similarity_matrix_ooc,
)
from repro.store import MatrixStore


def _matrix(values, names):
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(values.shape[0])],
        model_names=list(names),
        values=values,
    )


def _spill_config(budget):
    return SimilarityConfig(spill_threshold_bytes=0, max_bytes_in_flight=budget)


@st.composite
def performance_matrices(draw, max_models=24, max_datasets=10):
    n = draw(st.integers(min_value=2, max_value=max_models))
    d = draw(st.integers(min_value=1, max_value=max_datasets))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0, size=(d, n))
    if draw(st.booleans()):
        # Quantised accuracies produce heavy similarity ties — the regime
        # where a divergent merge order would actually show up.
        values = np.round(values * 8) / 8
    return _matrix(values, [f"m{i}" for i in range(n)])


@settings(max_examples=40, deadline=None)
@given(
    matrix=performance_matrices(),
    top_k=st.integers(min_value=1, max_value=8),
    budget=st.sampled_from([4096, 65536, 64 * 1024 * 1024]),
)
def test_ooc_similarity_bitwise_equals_dense(tmp_path_factory, matrix, top_k, budget):
    store = MatrixStore(tmp_path_factory.mktemp("sim"))
    dense = performance_similarity_matrix(matrix, top_k=top_k, cache=False)
    spilled = performance_similarity_matrix_ooc(
        matrix,
        top_k=top_k,
        config=_spill_config(budget),
        cache=False,
        store=store,
    )
    assert np.array_equal(dense, spilled)


@settings(max_examples=30, deadline=None)
@given(matrix=performance_matrices(), top_k=st.integers(min_value=1, max_value=6))
def test_ooc_distance_bitwise_equals_dense(tmp_path_factory, matrix, top_k):
    store = MatrixStore(tmp_path_factory.mktemp("dist"))
    dense_similarity = performance_similarity_matrix(matrix, top_k=top_k, cache=False)
    spilled_similarity = performance_similarity_matrix_ooc(
        matrix, top_k=top_k, config=_spill_config(4096), cache=False, store=store
    )
    dense_distance = similarity_to_distance(dense_similarity)
    spilled_distance = distance_memmap_for(
        matrix, spilled_similarity, top_k=top_k, config=_spill_config(4096), store=store
    )
    assert np.array_equal(dense_distance, spilled_distance)
    # The streamed upper-triangle gather is value- and order-identical to
    # the triu indexing the threshold quantile used to rely on.
    assert np.array_equal(
        upper_triangle_values(spilled_distance),
        dense_distance[np.triu_indices_from(dense_distance, k=1)],
    )


@settings(max_examples=25, deadline=None)
@given(matrix=performance_matrices(max_models=20))
def test_ooc_clustering_bitwise_equals_dense(tmp_path_factory, matrix):
    config = ClusteringConfig()
    dense = ModelClusterer(config).cluster(matrix, cache=False)
    spill = SimilarityConfig(
        spill_threshold_bytes=0,
        max_bytes_in_flight=4096,
        store_dir=str(tmp_path_factory.mktemp("cluster")),
    )
    spilled = ModelClusterer(config).cluster(
        matrix, cache=False, similarity_config=spill
    )
    assert np.array_equal(dense.assignment.labels, spilled.assignment.labels)
    assert dense.representatives == spilled.representatives
    assert dense.silhouette == spilled.silhouette
    assert dense.extras["distance_threshold"] == spilled.extras["distance_threshold"]
    assert np.array_equal(dense.similarity, spilled.similarity)
    assert spilled.extras.get("ooc") == 1.0
    assert isinstance(spilled.similarity, np.memmap)


@st.composite
def update_steps(draw, max_steps=3):
    d = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    base_n = draw(st.integers(min_value=2, max_value=8))
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_steps))):
        steps.append(
            (
                draw(st.integers(min_value=0, max_value=2)),  # removals
                draw(st.integers(min_value=0, max_value=3)),  # additions
            )
        )
    return d, rng, base_n, steps


@settings(max_examples=25, deadline=None)
@given(spec=update_steps(), top_k=st.integers(min_value=1, max_value=5))
def test_ooc_incremental_chain_equals_oracle(tmp_path_factory, spec, top_k):
    d, rng, base_n, steps = spec
    store = MatrixStore(tmp_path_factory.mktemp("chain"))
    config = _spill_config(4096)
    counter = base_n
    names = [f"m{i}" for i in range(base_n)]
    values = rng.uniform(0.0, 1.0, size=(d, base_n))
    current = _matrix(values, names)
    similarity = performance_similarity_matrix_ooc(
        current, top_k=top_k, config=config, cache=False, store=store
    )
    for remove_count, add_count in steps:
        keep = list(range(len(current.model_names)))
        rng.shuffle(keep)
        keep = sorted(keep[: max(1, len(keep) - remove_count)])
        fresh = [f"m{counter + i}" for i in range(add_count)]
        counter += add_count
        new_names = [current.model_names[i] for i in keep] + fresh
        new_values = np.concatenate(
            [current.values[:, keep], rng.uniform(0.0, 1.0, size=(d, add_count))],
            axis=1,
        )
        new_matrix = _matrix(new_values, new_names)
        similarity = update_similarity_matrix_ooc(
            current, similarity, new_matrix,
            top_k=top_k, config=config, cache=False, store=store,
        )
        oracle = performance_similarity_matrix(new_matrix, top_k=top_k, cache=False)
        assert np.array_equal(oracle, similarity)
        current = new_matrix
