"""Property suite: scheduled == serial, whatever the scheduling.

The acceptance property of the epoch scheduler — a request's result is
bitwise-identical (winner, stage records, validation scores, costs) to the
pre-refactor serial path — must hold for *every* scheduling configuration:
any policy, any epoch budget, any concurrency, any interleaving with other
requests, any executor backend.  Hypothesis drives randomized mixes
through the scheduler and compares each request against the serial oracle
computed once per session.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.sched import EpochScheduler, SchedulerConfig

TARGETS = ["mnli", "boolq"]


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def serial_oracle(artifacts):
    """The blocking path's results, computed once per (target, top_k)."""
    selector = TwoPhaseSelector(artifacts)
    oracle = {}
    for target in TARGETS:
        for top_k in (None, 3, 5):
            oracle[(target, top_k)] = selector.select(target, top_k=top_k)
    return oracle


def assert_bitwise_equal(result, serial):
    """Full structural equality of two TwoPhaseResult records."""
    assert result.selected_model == serial.selected_model
    assert result.selected_accuracy == serial.selected_accuracy
    assert result.selection.selected_val_accuracy == serial.selection.selected_val_accuracy
    assert result.selection.runtime_epochs == serial.selection.runtime_epochs
    assert result.selection.num_candidates == serial.selection.num_candidates
    # StageRecord is a dataclass: equality covers survivors, validation
    # scores, predictions and both removal lists, exactly.
    assert result.selection.stages == serial.selection.stages
    assert result.selection.final_accuracies == serial.selection.final_accuracies
    assert result.recall.recalled_models == serial.recall.recalled_models
    assert result.recall.recall_scores == serial.recall.recall_scores
    assert result.recall.epoch_cost == serial.recall.epoch_cost
    assert result.total_cost == serial.total_cost


requests_strategy = st.lists(
    st.tuples(
        st.sampled_from(TARGETS),
        st.sampled_from([None, 3, 5]),
    ),
    min_size=1,
    max_size=6,
)


class TestSchedulerEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        mix=requests_strategy,
        policy=st.sampled_from(["fair_share", "deadline"]),
        epoch_budget=st.integers(min_value=1, max_value=16),
        max_concurrent=st.integers(min_value=1, max_value=6),
    )
    def test_concurrent_requests_equal_serial_runs(
        self, artifacts, serial_oracle, mix, policy, epoch_budget, max_concurrent
    ):
        scheduler = EpochScheduler.for_artifacts(
            artifacts,
            config=SchedulerConfig(
                policy=policy,
                epoch_budget=epoch_budget,
                max_concurrent=max_concurrent,
                max_queue=len(mix),
            ),
        )
        handles = [
            scheduler.submit(target, top_k=top_k) for target, top_k in mix
        ]
        scheduler.run_until_idle()
        for (target, top_k), handle in zip(mix, handles):
            assert_bitwise_equal(
                scheduler.result(handle), serial_oracle[(target, top_k)]
            )

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        mix=requests_strategy,
        backend=st.sampled_from(["serial", "thread:2", "thread:4"]),
    )
    def test_equivalence_across_executor_backends(
        self, artifacts, serial_oracle, mix, backend
    ):
        scheduler = EpochScheduler.for_artifacts(
            artifacts,
            config=SchedulerConfig(max_concurrent=4, epoch_budget=6,
                                   max_queue=len(mix)),
            parallel=backend,
        )
        handles = [
            scheduler.submit(target, top_k=top_k) for target, top_k in mix
        ]
        scheduler.run_until_idle()
        for (target, top_k), handle in zip(mix, handles):
            assert_bitwise_equal(
                scheduler.result(handle), serial_oracle[(target, top_k)]
            )

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(duplicates=st.integers(min_value=2, max_value=5))
    def test_session_reuse_never_changes_results(
        self, artifacts, serial_oracle, duplicates
    ):
        """N identical concurrent requests: full reuse, identical records."""
        scheduler = EpochScheduler.for_artifacts(
            artifacts,
            config=SchedulerConfig(max_concurrent=duplicates, epoch_budget=4,
                                   max_queue=duplicates),
        )
        handles = [scheduler.submit("mnli") for _ in range(duplicates)]
        scheduler.run_until_idle()
        for handle in handles:
            assert_bitwise_equal(
                scheduler.result(handle), serial_oracle[("mnli", None)]
            )
        stats = scheduler.pool.stats()
        # Duplicates beyond the first train nothing new: the pool trains
        # each unique (model, epoch) once and serves the other N-1 requests
        # from the recorded prefix.
        assert stats["epochs_reused"] == (duplicates - 1) * stats["epochs_trained"]
