"""Property suite: speculation is opt-in, honest, and never double-charges.

Contracts of the curve-extrapolation early-stopping layer, driven by
hypothesis over randomized request mixes, scheduling policies and executor
backends:

* **Exactness** — a request submitted with ``extrapolate=False`` (or not
  opted in at all) is bitwise-identical to the serial blocking path, on
  every backend, even while speculative requests run concurrently in the
  same scheduler.
* **Determinism** — speculative *decisions* (winner, stage records, prune
  set, costs) are a pure function of the request regardless of
  interleaving, policy, or backend; that determinism is what makes the
  crash/resume prune replay possible.  The only context-dependent part of
  a speculative result is observability: the ``actual_final`` /
  ``actual_regret`` honesty fields appear exactly when some concurrent
  request trained the pruned arm to full budget anyway (shared sessions).
* **Honesty** — charged epochs equal pool work (``trained + reused``), a
  pruned arm is never trained (or charged) after its prune boundary, the
  winner changes only when the exact winner itself was pruned, and in
  that case the recorded realized regret covers the winner gap.

The module runs the successive-halving ablation (``use_trend_filter=False``
— with the paper's trend filter on, the cohort collapses to one arm after
the first rung and there is nothing to speculate about; see
``benchmarks/bench_extrapolation.py``).
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.sched import EpochScheduler, SchedulerConfig

pytestmark = pytest.mark.extrapolation

TARGETS = ["mnli", "boolq"]
TOP_KS = [5, 8]

#: Honesty fields recorded opportunistically (only when a shared session
#: happened to train the pruned arm to full budget) — deterministic given
#: the whole mix, but not given one request alone.
OBSERVABILITY_KEYS = ("actual_final", "actual_regret")


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    built = OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )
    config = built.config
    return dataclasses.replace(
        built,
        config=dataclasses.replace(
            config,
            fine_selection=dataclasses.replace(
                config.fine_selection, use_trend_filter=False
            ),
        ),
    )


@pytest.fixture(scope="module")
def exact_oracle(artifacts):
    """The serial blocking path — what every exact request must match."""
    selector = TwoPhaseSelector(artifacts)
    return {
        (target, top_k): selector.select(target, top_k=top_k)
        for target in TARGETS
        for top_k in TOP_KS
    }


@pytest.fixture(scope="module")
def speculative_oracle(artifacts):
    """One serial scheduled run per request shape, with speculation on."""
    oracle = {}
    for target in TARGETS:
        for top_k in TOP_KS:
            scheduler = EpochScheduler.for_artifacts(
                artifacts, config=SchedulerConfig(max_concurrent=1, max_queue=1)
            )
            handle = scheduler.submit(target, top_k=top_k, extrapolate=True)
            scheduler.run_until_idle()
            oracle[(target, top_k)] = scheduler.result(handle)
    return oracle


def decision_extras(result):
    """The extras payload with the opportunistic observability keys removed."""
    extras = dict(result.selection.extras)
    payload = extras.get("extrapolation")
    if payload:
        extras["extrapolation"] = {
            **payload,
            "pruned": {
                name: {
                    key: value
                    for key, value in record.items()
                    if key not in OBSERVABILITY_KEYS
                }
                for name, record in payload["pruned"].items()
            },
        }
    return extras


def assert_decisions_equal(result, oracle):
    """Bitwise equality of everything except the observability fields."""
    assert result.selected_model == oracle.selected_model
    assert result.selected_accuracy == oracle.selected_accuracy
    assert (
        result.selection.selected_val_accuracy
        == oracle.selection.selected_val_accuracy
    )
    assert result.selection.runtime_epochs == oracle.selection.runtime_epochs
    assert result.selection.stages == oracle.selection.stages
    assert result.selection.final_accuracies == oracle.selection.final_accuracies
    assert decision_extras(result) == decision_extras(oracle)
    assert result.recall.recalled_models == oracle.recall.recalled_models
    assert result.recall.recall_scores == oracle.recall.recall_scores
    assert result.total_cost == oracle.total_cost


def run_mix(artifacts, mix, *, backend=None, policy="fair_share", epoch_budget=8):
    scheduler = EpochScheduler.for_artifacts(
        artifacts,
        config=SchedulerConfig(
            policy=policy,
            epoch_budget=epoch_budget,
            max_concurrent=len(mix),
            max_queue=len(mix),
        ),
        parallel=backend,
    )
    handles = [
        scheduler.submit(target, top_k=top_k, extrapolate=speculative)
        for target, top_k, speculative in mix
    ]
    scheduler.run_until_idle()
    return scheduler, [scheduler.result(handle) for handle in handles]


mixed_requests = st.lists(
    st.tuples(
        st.sampled_from(TARGETS),
        st.sampled_from(TOP_KS),
        st.booleans(),
    ),
    min_size=1,
    max_size=5,
)

speculative_requests = st.lists(
    st.tuples(
        st.sampled_from(TARGETS),
        st.sampled_from(TOP_KS),
        st.just(True),
    ),
    min_size=1,
    max_size=5,
)


class TestExactnessIsolation:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        mix=mixed_requests,
        backend=st.sampled_from([None, "serial", "thread:2", "thread:4"]),
        policy=st.sampled_from(["fair_share", "deadline"]),
    )
    def test_requests_match_their_oracle_in_any_mix(
        self, artifacts, exact_oracle, speculative_oracle, mix, backend, policy
    ):
        _, results = run_mix(artifacts, mix, backend=backend, policy=policy)
        for (target, top_k, speculative), result in zip(mix, results):
            oracle = (speculative_oracle if speculative else exact_oracle)[
                (target, top_k)
            ]
            assert_decisions_equal(result, oracle)
            if not speculative:
                # Exact requests must be *fully* bitwise-identical — no
                # extrapolation payload may leak in from neighbors.
                assert result.selection.extras == oracle.selection.extras
                assert "extrapolation" not in result.selection.extras


class TestHonestAccounting:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(mix=speculative_requests, epoch_budget=st.integers(2, 12))
    def test_charged_epochs_equal_pool_work(
        self, artifacts, mix, epoch_budget
    ):
        scheduler, results = run_mix(artifacts, mix, epoch_budget=epoch_budget)
        pool = scheduler.stats()["session_pool"]
        charged = sum(r.selection.runtime_epochs for r in results)
        assert pool["epochs_trained"] + pool["epochs_reused"] == charged

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(mix=speculative_requests)
    def test_pruned_arms_are_never_charged_again(self, artifacts, mix):
        _, results = run_mix(artifacts, mix)
        for result in results:
            payload = result.selection.extras.get("extrapolation")
            if not payload:
                continue
            for model, record in payload["pruned"].items():
                # The prune record's stage is the first stage the arm does
                # not enter: it must be absent from every later stage's
                # validation set (validations only cover arms that trained
                # the stage, i.e. arms the stage charged).
                for stage_record in result.selection.stages:
                    if stage_record.stage >= record["stage"]:
                        assert model not in stage_record.validation_accuracy
                        assert model not in stage_record.surviving_models

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(mix=speculative_requests)
    def test_speculation_only_saves_epochs(self, artifacts, exact_oracle, mix):
        _, results = run_mix(artifacts, mix)
        for (target, top_k, _), result in zip(mix, results):
            exact = exact_oracle[(target, top_k)]
            assert result.selection.runtime_epochs <= exact.selection.runtime_epochs


class TestRegretAccounting:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(mix=speculative_requests)
    def test_winner_changes_only_when_the_exact_winner_was_pruned(
        self, artifacts, exact_oracle, mix
    ):
        """The cohort-extra contract: kept arms keep their exact fate.

        Pruning may only ever change the outcome by retiring the arm that
        would have won; it can never reshuffle survivors it kept.
        """
        _, results = run_mix(artifacts, mix)
        for (target, top_k, _), result in zip(mix, results):
            exact = exact_oracle[(target, top_k)]
            if result.selected_model == exact.selected_model:
                assert (
                    result.selection.selected_val_accuracy
                    == exact.selection.selected_val_accuracy
                )
                continue
            payload = result.selection.extras.get("extrapolation") or {}
            assert exact.selected_model in payload.get("pruned", {})

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        shape=st.tuples(st.sampled_from(TARGETS), st.sampled_from(TOP_KS)),
        backend=st.sampled_from([None, "thread:2"]),
    )
    def test_observed_realized_regret_covers_the_winner_gap(
        self, artifacts, exact_oracle, shape, backend
    ):
        """Run the speculative and exact twins side by side: the shared
        sessions make every realized outcome observable, so the honesty
        report's ``actual_regret`` must account for the entire winner gap.
        """
        target, top_k = shape
        _, results = run_mix(
            artifacts,
            [(target, top_k, True), (target, top_k, False)],
            backend=backend,
        )
        speculative, exact = results
        assert_decisions_equal(exact, exact_oracle[(target, top_k)])
        gap = (
            exact.selection.selected_val_accuracy
            - speculative.selection.selected_val_accuracy
        )
        payload = speculative.selection.extras.get("extrapolation")
        if gap <= 0:
            return
        # The exact twin trained the true winner to full budget, so its
        # prune record must carry the realized fields, and the realized
        # regret is exactly the winner gap.
        record = payload["pruned"][exact.selected_model]
        assert "actual_final" in record
        assert payload is not None
        max_actual = max(
            float(r.get("actual_regret", 0.0)) for r in payload["pruned"].values()
        )
        assert gap <= max_actual + 1e-9

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(mix=speculative_requests)
    def test_regret_bound_matches_the_decision_records(self, artifacts, mix):
        """``regret_bound`` is the decision-time guarantee: the maximum by
        which any pruned arm's slack-padded ceiling exceeded the winner's
        final validation accuracy (clipped at zero)."""
        _, results = run_mix(artifacts, mix)
        for result in results:
            payload = result.selection.extras.get("extrapolation")
            if not payload:
                continue
            winner_val = result.selection.selected_val_accuracy
            expected = max(
                [
                    float(record["upper_bound"]) - winner_val
                    for record in payload["pruned"].values()
                ],
                default=0.0,
            )
            assert payload["regret_bound"] == pytest.approx(max(0.0, expected))
            for record in payload["pruned"].values():
                # Bounds are monotone: never below what the arm had banked.
                assert record["upper_bound"] >= record["observed_val"]
