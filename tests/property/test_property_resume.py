"""Property suite: crash anywhere, resume exactly.

The crash-safety contract of :mod:`repro.persist` must hold for *every*
configuration, not just the ones the example-based fault tests pick: any
target, any ``top_k``, any scheduling policy, any epoch budget, any
executor backend, a crash at any step boundary.  Hypothesis drives
randomized (configuration, crash point) pairs through a kill/restart cycle
and holds the resumed result to the serial oracle — bitwise.

Two invariants per example:

* **Equivalence** — the resumed result equals the never-crashed serial
  path exactly (same winner, stage records, scores, costs).
* **No double charging** — every journaled epoch is charged by replay and
  served from a session snapshot, never trained a second time.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.persist import (
    PlanJournal,
    PlanStore,
    SimulatedCrash,
    install_hook,
    remove_hook,
)
from repro.sched import EpochScheduler, SchedulerConfig

TARGETS = ["mnli", "boolq"]

#: Unique per-example store directories under one tmp root (hypothesis
#: runs many examples inside a single function-scoped tmp_path).
_store_ids = itertools.count()


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def serial_oracle(artifacts):
    selector = TwoPhaseSelector(artifacts)
    return {
        (target, top_k): selector.select(target, top_k=top_k)
        for target in TARGETS
        for top_k in (None, 3, 5)
    }


@pytest.fixture(scope="module")
def step_counts(artifacts, tmp_path_factory):
    """Step-boundary count per (target, top_k), measured on clean runs."""
    counts = {}
    root = tmp_path_factory.mktemp("count-store")
    for target in TARGETS:
        for top_k in (None, 3, 5):
            hits = {"n": 0}
            install_hook("plan.step", lambda s, i: hits.__setitem__("n", hits["n"] + 1))
            try:
                scheduler = EpochScheduler.for_artifacts(
                    artifacts, persist=PlanStore(root / f"{target}-{top_k}")
                )
                scheduler.submit(target, top_k=top_k)
                scheduler.run_until_idle()
            finally:
                remove_hook("plan.step")
            counts[(target, top_k)] = hits["n"]
    return counts


def assert_bitwise_equal(result, serial):
    """Full structural equality of two TwoPhaseResult records."""
    assert result.selected_model == serial.selected_model
    assert result.selected_accuracy == serial.selected_accuracy
    assert result.selection.selected_val_accuracy == serial.selection.selected_val_accuracy
    assert result.selection.runtime_epochs == serial.selection.runtime_epochs
    assert result.selection.num_candidates == serial.selection.num_candidates
    assert result.selection.stages == serial.selection.stages
    assert result.selection.final_accuracies == serial.selection.final_accuracies
    assert result.recall.recalled_models == serial.recall.recalled_models
    assert result.recall.recall_scores == serial.recall.recall_scores
    assert result.recall.epoch_cost == serial.recall.epoch_cost
    assert result.total_cost == serial.total_cost


def crash_then_resume(
    artifacts, root, target, top_k, ordinal, *, config=None, backend=None
):
    """One kill/restart cycle; returns (result, scheduler2, replayable)."""
    scheduler1 = EpochScheduler.for_artifacts(
        artifacts, persist=PlanStore(root), config=config, parallel=backend
    )
    hits = {"n": 0}

    def _crash(site, _info):
        hits["n"] += 1
        if hits["n"] == ordinal:
            raise SimulatedCrash(f"{site}#{ordinal}")

    install_hook("plan.step", _crash)
    try:
        scheduler1.submit(target, top_k=top_k)
        with pytest.raises(SimulatedCrash):
            scheduler1.run_until_idle()
    finally:
        remove_hook("plan.step")

    store = PlanStore(root)
    replayable = sum(
        record["payload"]["epochs"]
        for path in store.journal_paths()
        for record in PlanJournal(path).of_type("step")
    )
    scheduler2 = EpochScheduler.for_artifacts(
        artifacts, persist=store, config=config, parallel=backend
    )
    recovered = scheduler2.recover()
    assert len(recovered) == 1
    scheduler2.run_until_idle()
    return scheduler2.result(recovered[0], timeout=10), scheduler2, replayable


def assert_no_double_charge(scheduler, result, replayable):
    stats = scheduler.stats()
    assert stats["persist"]["epochs_replayed"] == replayable
    pool = stats["session_pool"]
    assert pool["epochs_reused"] >= replayable
    assert pool["epochs_trained"] + pool["epochs_reused"] == result.selection.runtime_epochs


class TestResumeEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        target=st.sampled_from(TARGETS),
        top_k=st.sampled_from([None, 3, 5]),
        policy=st.sampled_from(["fair_share", "deadline"]),
        epoch_budget=st.integers(min_value=1, max_value=8),
        crash_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_kill_anywhere_resume_bitwise_identical(
        self,
        artifacts,
        serial_oracle,
        step_counts,
        tmp_path,
        target,
        top_k,
        policy,
        epoch_budget,
        crash_fraction,
    ):
        steps = step_counts[(target, top_k)]
        ordinal = 1 + round(crash_fraction * (steps - 1))
        root = tmp_path / f"store-{next(_store_ids)}"
        config = SchedulerConfig(policy=policy, epoch_budget=epoch_budget)
        result, scheduler, replayable = crash_then_resume(
            artifacts, root, target, top_k, ordinal, config=config
        )
        assert_bitwise_equal(result, serial_oracle[(target, top_k)])
        assert_no_double_charge(scheduler, result, replayable)

    @pytest.mark.parametrize("backend", ["serial", "thread:2", "process:2"])
    def test_resume_equivalence_across_backends(
        self, artifacts, serial_oracle, step_counts, tmp_path, backend
    ):
        target, top_k = "mnli", 5
        ordinal = max(2, step_counts[(target, top_k)] // 2)
        result, scheduler, replayable = crash_then_resume(
            artifacts, tmp_path / "store", target, top_k, ordinal, backend=backend
        )
        assert_bitwise_equal(result, serial_oracle[(target, top_k)])
        assert_no_double_charge(scheduler, result, replayable)


class TestBudgetRaiseProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        target=st.sampled_from(TARGETS),
        top_k=st.sampled_from([3, 5]),
        raise_to=st.integers(min_value=4, max_value=9),
    )
    def test_raise_budget_charges_only_the_delta(
        self, artifacts, tmp_path, target, top_k, raise_to
    ):
        import dataclasses

        root = tmp_path / f"store-{next(_store_ids)}"
        s1 = EpochScheduler.for_artifacts(artifacts, persist=PlanStore(root))
        r1 = s1.submit(target, top_k=top_k)
        s1.run_until_idle()
        res1 = s1.result(r1, timeout=10)

        raised_artifacts = dataclasses.replace(
            artifacts,
            config=dataclasses.replace(
                artifacts.config,
                fine_selection=dataclasses.replace(
                    artifacts.config.fine_selection, total_epochs=raise_to
                ),
            ),
        )
        oracle = TwoPhaseSelector(raised_artifacts).select(target, top_k=top_k)

        s2 = EpochScheduler.for_artifacts(artifacts, persist=PlanStore(root))
        r2 = s2.submit(target, top_k=top_k, total_epochs=raise_to)
        s2.run_until_idle()
        res2 = s2.result(r2, timeout=10)
        assert_bitwise_equal(res2, oracle)

        stats = s2.stats()
        # The first run's rungs are replayed, not retrained: actual
        # training in the raised run is bounded by the budget delta.
        assert stats["persist"]["epochs_replayed"] == res1.selection.runtime_epochs
        pool = stats["session_pool"]
        delta = res2.selection.runtime_epochs - res1.selection.runtime_epochs
        assert pool["epochs_trained"] <= delta
