"""Property-based tests for the clustering substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.distance import pairwise_distances, similarity_to_distance
from repro.cluster.hierarchical import AgglomerativeClustering
from repro.cluster.nnchain import NNChainClustering
from repro.cluster.kmeans import KMeans
from repro.cluster.silhouette import _silhouette_samples_loop, silhouette_samples


@st.composite
def point_sets(draw, min_points=4, max_points=25, max_dim=5):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    return draw(
        hnp.arrays(
            dtype=float,
            shape=(n, dim),
            elements=st.floats(min_value=-10.0, max_value=10.0),
        )
    )


class TestDistanceProperties:
    @given(point_sets())
    @settings(max_examples=40, deadline=None)
    def test_distance_matrix_axioms(self, points):
        distances = pairwise_distances(points)
        assert np.allclose(distances, distances.T, atol=1e-8)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-8)
        assert np.all(distances >= -1e-9)

    @given(point_sets(min_points=3, max_points=12))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_euclidean(self, points):
        distances = pairwise_distances(points, metric="euclidean")
        n = distances.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert distances[i, j] <= distances[i, k] + distances[k, j] + 1e-6

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 10), st.integers(2, 10)).filter(
                lambda shape: shape[0] == shape[1]
            ),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_similarity_to_distance_range(self, similarity):
        similarity = (similarity + similarity.T) / 2
        np.fill_diagonal(similarity, 1.0)
        distance = similarity_to_distance(similarity)
        assert np.all(distance >= 0.0)
        assert np.allclose(np.diag(distance), 0.0)


class TestClusteringProperties:
    @given(point_sets(min_points=5), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_kmeans_label_contract(self, points, num_clusters):
        num_clusters = min(num_clusters, points.shape[0])
        labels = KMeans(num_clusters, rng=0, num_init=2, max_iter=30).fit_predict(points)
        assert labels.shape == (points.shape[0],)
        assert len(set(labels.tolist())) <= num_clusters
        assert labels.min() >= 0

    @given(point_sets(min_points=4, max_points=15), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_hierarchical_respects_num_clusters(self, points, num_clusters):
        num_clusters = min(num_clusters, points.shape[0])
        distances = pairwise_distances(points)
        labels = AgglomerativeClustering(num_clusters=num_clusters).fit_predict(distances)
        # Exactly the requested number of clusters (merging can always continue
        # down to the target because every pair has a finite distance).
        assert len(set(labels.tolist())) == num_clusters

    @given(point_sets(min_points=6, max_points=20))
    @settings(max_examples=30, deadline=None)
    def test_silhouette_values_bounded(self, points):
        distances = pairwise_distances(points)
        labels = KMeans(2, rng=0, num_init=2, max_iter=30).fit_predict(points)
        if len(set(labels.tolist())) < 2:
            return
        values = silhouette_samples(distances, labels)
        assert np.all(values >= -1.0 - 1e-9)
        assert np.all(values <= 1.0 + 1e-9)

    @given(point_sets(min_points=4, max_points=25), st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_silhouette_streaming_bitwise_equals_loop(self, points, num_labels):
        distances = pairwise_distances(points)
        rng = np.random.default_rng(points.shape[0] * 31 + num_labels)
        labels = rng.integers(0, num_labels, size=points.shape[0])
        if np.unique(labels).size < 2:
            labels[0] = labels.max() + 1
        assert np.array_equal(
            silhouette_samples(distances, labels),
            _silhouette_samples_loop(distances, labels),
        )


def quantized_distances(draw_values, n):
    """Symmetric matrix over a tiny value grid — duplicate distances abound."""
    raw = np.asarray(draw_values, dtype=float).reshape(n, n)
    distances = (raw + raw.T) / 2
    np.fill_diagonal(distances, 0.0)
    return distances


@st.composite
def tied_matrices(draw, min_points=4, max_points=14):
    """Adversarial tied/duplicate-distance inputs for the scan-vs-chain fuzz.

    Three regimes: values from a coarse integer grid (exact ties
    everywhere, exercising the scan's row-min cache tie branch —
    hierarchical.py's first-occurrence rule — via the chain's
    tie-detection delegation), duplicated points (zero distances and
    mirrored rows), and continuous values (generically tie-free, the
    chain's native path).
    """
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    regime = draw(st.sampled_from(["quantized", "duplicates", "continuous"]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    if regime == "quantized":
        grid = draw(st.integers(min_value=2, max_value=4))
        return quantized_distances(rng.integers(1, grid + 1, size=(n, n)), n)
    if regime == "duplicates":
        base = rng.normal(size=(max(2, n // 2), 3))
        points = np.vstack([base, base])[:n]
        return pairwise_distances(points)
    return pairwise_distances(rng.normal(size=(n, 4)))


class TestScanVersusChainProperties:
    """`nnchain` must reproduce the scan engine on every input regime.

    Tie-free inputs replay the scan's merges via the chain theorem; tied
    inputs trip the chain's duplicate-minimum detection and delegate to
    the scan wholesale — either way labels must agree exactly.
    """

    @given(
        tied_matrices(),
        st.sampled_from(["average", "single", "complete"]),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_labels_identical_under_num_clusters(self, distances, linkage, k):
        k = min(k, distances.shape[0])
        scan = AgglomerativeClustering(num_clusters=k, linkage=linkage)
        chain = NNChainClustering(num_clusters=k, linkage=linkage)
        assert np.array_equal(
            scan.fit_predict(distances), chain.fit_predict(distances)
        )
        # Merge slots must agree pair-for-pair; heights agree bitwise
        # except on the chain's native average-linkage path (~1 ulp).
        assert [m[:2] for m in scan.merge_history_] == [
            m[:2] for m in chain.merge_history_
        ]

    @given(tied_matrices(), st.sampled_from(["average", "single", "complete"]))
    @settings(max_examples=40, deadline=None)
    def test_labels_identical_under_threshold(self, distances, linkage):
        # A threshold strictly between grid values cannot sit ulp-close to
        # any (possibly rounded-differently) average-linkage height.
        threshold = float(np.median(distances)) + 0.24217
        scan = AgglomerativeClustering(distance_threshold=threshold, linkage=linkage)
        chain = NNChainClustering(distance_threshold=threshold, linkage=linkage)
        assert np.array_equal(
            scan.fit_predict(distances), chain.fit_predict(distances)
        )
