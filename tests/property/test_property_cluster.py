"""Property-based tests for the clustering substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.distance import pairwise_distances, similarity_to_distance
from repro.cluster.hierarchical import AgglomerativeClustering
from repro.cluster.kmeans import KMeans
from repro.cluster.silhouette import silhouette_samples


@st.composite
def point_sets(draw, min_points=4, max_points=25, max_dim=5):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    return draw(
        hnp.arrays(
            dtype=float,
            shape=(n, dim),
            elements=st.floats(min_value=-10.0, max_value=10.0),
        )
    )


class TestDistanceProperties:
    @given(point_sets())
    @settings(max_examples=40, deadline=None)
    def test_distance_matrix_axioms(self, points):
        distances = pairwise_distances(points)
        assert np.allclose(distances, distances.T, atol=1e-8)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-8)
        assert np.all(distances >= -1e-9)

    @given(point_sets(min_points=3, max_points=12))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_euclidean(self, points):
        distances = pairwise_distances(points, metric="euclidean")
        n = distances.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert distances[i, j] <= distances[i, k] + distances[k, j] + 1e-6

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 10), st.integers(2, 10)).filter(
                lambda shape: shape[0] == shape[1]
            ),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_similarity_to_distance_range(self, similarity):
        similarity = (similarity + similarity.T) / 2
        np.fill_diagonal(similarity, 1.0)
        distance = similarity_to_distance(similarity)
        assert np.all(distance >= 0.0)
        assert np.allclose(np.diag(distance), 0.0)


class TestClusteringProperties:
    @given(point_sets(min_points=5), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_kmeans_label_contract(self, points, num_clusters):
        num_clusters = min(num_clusters, points.shape[0])
        labels = KMeans(num_clusters, rng=0, num_init=2, max_iter=30).fit_predict(points)
        assert labels.shape == (points.shape[0],)
        assert len(set(labels.tolist())) <= num_clusters
        assert labels.min() >= 0

    @given(point_sets(min_points=4, max_points=15), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_hierarchical_respects_num_clusters(self, points, num_clusters):
        num_clusters = min(num_clusters, points.shape[0])
        distances = pairwise_distances(points)
        labels = AgglomerativeClustering(num_clusters=num_clusters).fit_predict(distances)
        # Exactly the requested number of clusters (merging can always continue
        # down to the target because every pair has a finite distance).
        assert len(set(labels.tolist())) == num_clusters

    @given(point_sets(min_points=6, max_points=20))
    @settings(max_examples=30, deadline=None)
    def test_silhouette_values_bounded(self, points):
        distances = pairwise_distances(points)
        labels = KMeans(2, rng=0, num_init=2, max_iter=30).fit_predict(points)
        if len(set(labels.tolist())) < 2:
            return
        values = silhouette_samples(distances, labels)
        assert np.all(values >= -1.0 - 1e-9)
        assert np.all(values <= 1.0 + 1e-9)
