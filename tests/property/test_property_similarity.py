"""Property-based tests for the Eq. 1 model similarity and the NN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    _performance_similarity_matrix_loop,
    performance_similarity,
    performance_similarity_matrix,
)
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.metrics import accuracy


@st.composite
def accuracy_vector_pairs(draw, max_datasets=30):
    size = draw(st.integers(min_value=1, max_value=max_datasets))
    a = draw(
        hnp.arrays(dtype=float, shape=size, elements=st.floats(min_value=0.0, max_value=1.0))
    )
    b = draw(
        hnp.arrays(dtype=float, shape=size, elements=st.floats(min_value=0.0, max_value=1.0))
    )
    return a, b


class TestEq1Properties:
    @given(accuracy_vector_pairs(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_similarity_bounded_and_symmetric(self, vectors, top_k):
        a, b = vectors
        value = performance_similarity(a, b, top_k=top_k)
        assert 0.0 <= value <= 1.0
        assert value == performance_similarity(b, a, top_k=top_k)

    @given(accuracy_vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_self_similarity_is_one(self, vectors):
        a, _ = vectors
        assert performance_similarity(a, a) == 1.0

    @given(accuracy_vector_pairs(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_smaller_top_k_never_increases_similarity(self, vectors, top_k):
        """Averaging only the largest differences is the most pessimistic view:
        increasing k can only add smaller differences and raise the similarity."""
        a, b = vectors
        small_k = performance_similarity(a, b, top_k=top_k)
        large_k = performance_similarity(a, b, top_k=top_k + 3)
        assert large_k >= small_k - 1e-12


@st.composite
def performance_matrices(draw, max_models=12, max_datasets=10):
    """Random PerformanceMatrix instances, including the n = 1 edge case."""
    n = draw(st.integers(min_value=1, max_value=max_models))
    d = draw(st.integers(min_value=1, max_value=max_datasets))
    values = draw(
        hnp.arrays(
            dtype=float,
            shape=(d, n),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(d)],
        model_names=[f"m{j}" for j in range(n)],
        values=values,
    )


class TestVectorizedMatrixProperties:
    @given(performance_matrices(), st.integers(min_value=1, max_value=15))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_agrees_with_pairwise_loop(self, matrix, top_k):
        """The vectorized engine reproduces the reference O(n^2) loop exactly,
        including top_k larger than the dataset dimension and n = 1."""
        fast = performance_similarity_matrix(matrix, top_k=top_k, cache=False)
        slow = _performance_similarity_matrix_loop(matrix, top_k=top_k)
        assert fast.shape == slow.shape
        assert np.allclose(fast, slow, atol=1e-12, rtol=0.0)

    @given(
        performance_matrices(),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunking_never_changes_the_result(self, matrix, top_k, chunk_rows):
        whole = performance_similarity_matrix(matrix, top_k=top_k, cache=False)
        chunked = performance_similarity_matrix(
            matrix, top_k=top_k, cache=False, chunk_rows=chunk_rows
        )
        assert np.array_equal(whole, chunked)


class TestNnNumericalProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 20), st.integers(2, 8)),
            elements=st.floats(min_value=-50.0, max_value=50.0),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_rows_are_distributions(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0.0)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 15), st.integers(2, 6)),
            elements=st.floats(min_value=-20.0, max_value=20.0),
        ),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_cross_entropy_non_negative_with_zero_mean_grad_rows(self, logits, data):
        labels = data.draw(
            hnp.arrays(
                dtype=int,
                shape=logits.shape[0],
                elements=st.integers(0, logits.shape[1] - 1),
            )
        )
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss >= -1e-9
        # Each gradient row sums to zero (softmax minus one-hot, scaled by 1/n).
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-8)

    @given(
        hnp.arrays(dtype=int, shape=st.integers(1, 50), elements=st.integers(0, 5))
    )
    @settings(max_examples=40, deadline=None)
    def test_accuracy_of_identical_arrays_is_one(self, labels):
        assert accuracy(labels, labels.copy()) == 1.0
