"""Property-based tests for convergence trends and selection invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergence import ConvergenceTrendMiner
from repro.zoo.finetune import LearningCurve


@st.composite
def curve_collections(draw, min_datasets=3, max_datasets=12, epochs=3):
    num_datasets = draw(st.integers(min_value=min_datasets, max_value=max_datasets))
    curves = {}
    for index in range(num_datasets):
        vals = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=epochs,
                max_size=epochs,
            )
        )
        tests = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=epochs,
                max_size=epochs,
            )
        )
        curves[f"dataset{index}"] = LearningCurve(
            model_name="model",
            dataset_name=f"dataset{index}",
            val_accuracy=list(vals),
            test_accuracy=list(tests),
        )
    return curves


class TestTrendMiningProperties:
    @given(curve_collections(), st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_trend_partition_covers_all_datasets(self, curves, num_trends, stage):
        miner = ConvergenceTrendMiner(num_trends=num_trends)
        trend_set = miner.mine("model", curves, stage=stage)
        labels = trend_set.trend_labels()
        assert set(labels) == set(curves)
        assert 1 <= len(trend_set.trends) <= min(num_trends, len(curves))
        # Trends are ordered by validation accuracy.
        vals = [trend.val_accuracy for trend in trend_set.trends]
        assert vals == sorted(vals)

    @given(curve_collections(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_prediction_is_a_convex_combination_of_final_tests(self, curves, query):
        miner = ConvergenceTrendMiner(num_trends=3)
        trend_set = miner.mine("model", curves, stage=1)
        prediction = trend_set.predict(query)
        finals = [curve.final_test for curve in curves.values()]
        assert min(finals) - 1e-9 <= prediction <= max(finals) + 1e-9

    @given(curve_collections(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_matched_trend_minimises_validation_distance(self, curves, query):
        miner = ConvergenceTrendMiner(num_trends=3)
        trend_set = miner.mine("model", curves, stage=1)
        matched = trend_set.match(query)
        best_distance = min(abs(trend.val_accuracy - query) for trend in trend_set.trends)
        assert abs(matched.val_accuracy - query) == best_distance


class TestHalvingScheduleProperties:
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_halving_epoch_count_formula(self, num_models, num_stages):
        """The SH epoch count implied by floor-halving matches a closed form
        simulation (this pins the runtime accounting used in Tables V/VI)."""
        survivors = num_models
        total = 0
        for _ in range(num_stages):
            total += survivors
            if survivors > 1:
                survivors = max(1, survivors // 2)
        # The schedule is bounded below by the final full training of the
        # winner and above by brute force.
        assert total >= num_stages
        assert total <= num_models * num_stages
        # Survivors reach 1 after enough stages.
        if num_stages >= int(np.ceil(np.log2(max(num_models, 1)))) + 1:
            assert survivors == 1
