"""Property-based equivalence tests for the incremental zoo-update paths.

The incremental offline-artifact refresh is only usable because it is
*provably* equivalent to the from-scratch oracle:

* :func:`update_similarity_matrix` must be **bitwise-identical** to a full
  :func:`performance_similarity_matrix` recompute, for any sequence of
  add/remove updates;
* :func:`repro.cluster.incremental.update_clustering` must honour its
  documented structural guarantees — surviving models' co-membership is
  preserved exactly relative to the previous epoch, the stale-model count
  never exceeds the configured budget without a re-cluster — and must fall
  back to a full re-cluster (identical to the from-scratch oracle) once the
  staleness threshold is crossed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.incremental import update_clustering
from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    performance_similarity_matrix,
    update_similarity_matrix,
)


def _matrix(values: np.ndarray, names) -> PerformanceMatrix:
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(values.shape[0])],
        model_names=list(names),
        values=values,
    )


@st.composite
def update_sequences(draw, max_steps=4, max_datasets=8, min_models=1):
    """A base repository plus a sequence of randomized add/remove steps.

    Each step removes a random subset of the surviving models and appends a
    random number of fresh ones (unique names, random accuracy vectors), so
    sequences cover add-only, remove-only, mixed and no-op-adjacent shapes.
    """
    d = draw(st.integers(min_value=1, max_value=max_datasets))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    base_n = draw(st.integers(min_value=min_models, max_value=8))
    counter = [base_n]

    def fresh_names(count):
        names = [f"m{counter[0] + i}" for i in range(count)]
        counter[0] += count
        return names

    base_names = [f"m{i}" for i in range(base_n)]
    base_values = rng.uniform(0.0, 1.0, size=(d, base_n))
    steps = []
    current = list(base_names)
    for _ in range(draw(st.integers(min_value=1, max_value=max_steps))):
        removable = draw(
            st.lists(st.sampled_from(current), unique=True, max_size=len(current))
            if current
            else st.just([])
        )
        num_added = draw(st.integers(min_value=0, max_value=4))
        added = fresh_names(num_added)
        survivors = [name for name in current if name not in set(removable)]
        if not survivors and not added:
            added = fresh_names(1)
        current = survivors + added
        steps.append((removable, added))
    return d, rng, base_names, base_values, steps


class TestIncrementalSimilarityEquivalence:
    @given(update_sequences(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_bitwise_equal_to_full_recompute_over_sequences(self, sequence, top_k):
        """Chained incremental updates never drift from the oracle, bitwise."""
        d, rng, names, values, steps = sequence
        matrix = _matrix(values, names)
        similarity = performance_similarity_matrix(matrix, top_k=top_k, cache=False)
        for removed, added in steps:
            survivors = [n for n in matrix.model_names if n not in set(removed)]
            kept_idx = [matrix.model_names.index(n) for n in survivors]
            new_values = np.concatenate(
                [matrix.values[:, kept_idx], rng.uniform(0.0, 1.0, (d, len(added)))],
                axis=1,
            )
            new_matrix = _matrix(new_values, survivors + added)
            similarity = update_similarity_matrix(
                matrix, similarity, new_matrix, top_k=top_k, cache=False
            )
            oracle = performance_similarity_matrix(
                new_matrix, top_k=top_k, cache=False
            )
            assert similarity.shape == oracle.shape
            assert np.array_equal(similarity, oracle)
            matrix = new_matrix

    @given(update_sequences(max_steps=1), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_chunked_incremental_matches_unchunked(self, sequence, chunk_rows):
        d, rng, names, values, steps = sequence
        matrix = _matrix(values, names)
        similarity = performance_similarity_matrix(matrix, top_k=3, cache=False)
        removed, added = steps[0]
        survivors = [n for n in matrix.model_names if n not in set(removed)]
        kept_idx = [matrix.model_names.index(n) for n in survivors]
        new_values = np.concatenate(
            [matrix.values[:, kept_idx], rng.uniform(0.0, 1.0, (d, len(added)))],
            axis=1,
        )
        new_matrix = _matrix(new_values, survivors + added)
        unchunked = update_similarity_matrix(
            matrix, similarity, new_matrix, top_k=3, cache=False
        )
        chunked = update_similarity_matrix(
            matrix, similarity, new_matrix, top_k=3, chunk_rows=chunk_rows, cache=False
        )
        assert np.array_equal(unchunked, chunked)


class TestIncrementalClusteringBounds:
    @given(update_sequences(min_models=3, max_datasets=6))
    @settings(max_examples=40, deadline=None)
    def test_staleness_bound_and_co_membership(self, sequence):
        """Incremental updates preserve survivors' co-membership exactly and
        never exceed the configured staleness budget without re-clustering."""
        d, rng, names, values, steps = sequence
        config = ClusteringConfig(staleness_threshold=0.6)
        matrix = _matrix(values, names)
        if len(names) < 2:
            return
        clustering = ModelClusterer(config).cluster(matrix, cache=False)
        for removed, added in steps:
            survivors = [n for n in matrix.model_names if n not in set(removed)]
            kept_idx = [matrix.model_names.index(n) for n in survivors]
            new_values = np.concatenate(
                [matrix.values[:, kept_idx], rng.uniform(0.0, 1.0, (d, len(added)))],
                axis=1,
            )
            new_matrix = _matrix(new_values, survivors + added)
            if len(new_matrix.model_names) < 2:
                break
            new_similarity = update_similarity_matrix(
                matrix, clustering.similarity, new_matrix,
                top_k=config.top_k, cache=False,
            )
            update = update_clustering(
                clustering, new_matrix, new_similarity, config=config
            )
            n = len(new_matrix.model_names)
            if update.reclustered:
                assert update.staleness == 0.0
                assert update.clustering.extras["stale_models"] == 0.0
            else:
                # The documented budget: at most staleness_threshold * n
                # models were placed without a full clustering run.
                stale = update.clustering.extras["stale_models"]
                assert stale <= config.staleness_threshold * n
                # Survivors' pairwise co-membership is preserved exactly.
                for i, a in enumerate(survivors):
                    for b in survivors[i + 1:]:
                        together_before = clustering.cluster_of(a) == clustering.cluster_of(b)
                        together_after = (
                            update.clustering.cluster_of(a)
                            == update.clustering.cluster_of(b)
                        )
                        assert together_before == together_after
                # Every non-singleton cluster elects a representative member.
                for cid, members in (
                    update.clustering.assignment.non_singleton_clusters().items()
                ):
                    assert update.clustering.representatives[cid] in members
            matrix, clustering = new_matrix, update.clustering

    @given(update_sequences(min_models=3, max_steps=1, max_datasets=6))
    @settings(max_examples=30, deadline=None)
    def test_zero_threshold_always_matches_oracle(self, sequence):
        """staleness_threshold=0 turns every update into a full re-cluster
        identical to clustering the new repository from scratch."""
        d, rng, names, values, steps = sequence
        config = ClusteringConfig(staleness_threshold=0.0)
        matrix = _matrix(values, names)
        clustering = ModelClusterer(config).cluster(matrix, cache=False)
        removed, added = steps[0]
        survivors = [n for n in matrix.model_names if n not in set(removed)]
        kept_idx = [matrix.model_names.index(n) for n in survivors]
        new_values = np.concatenate(
            [matrix.values[:, kept_idx], rng.uniform(0.0, 1.0, (d, len(added)))],
            axis=1,
        )
        new_matrix = _matrix(new_values, survivors + added)
        if len(new_matrix.model_names) < 2:
            return
        new_similarity = update_similarity_matrix(
            matrix, clustering.similarity, new_matrix, top_k=config.top_k, cache=False
        )
        update = update_clustering(clustering, new_matrix, new_similarity, config=config)
        if removed or added:
            assert update.reclustered
        oracle = ModelClusterer(config).cluster(new_matrix, cache=False)
        assert np.array_equal(
            update.clustering.assignment.labels, oracle.assignment.labels
        )
        assert update.clustering.representatives == oracle.representatives
