"""Property-based tests for the transferability metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.hscore import h_score
from repro.metrics.knn import knn_transfer_accuracy
from repro.metrics.leep import leep_score
from repro.metrics.nce import nce_score
from repro.metrics.normalization import min_max_normalize, rank_normalize


@st.composite
def posterior_and_labels(draw, max_samples=60, max_source=6, max_target=4):
    n = draw(st.integers(min_value=4, max_value=max_samples))
    num_source = draw(st.integers(min_value=2, max_value=max_source))
    num_target = draw(st.integers(min_value=2, max_value=max_target))
    raw = draw(
        hnp.arrays(
            dtype=float,
            shape=(n, num_source),
            elements=st.floats(min_value=0.01, max_value=10.0),
        )
    )
    posterior = raw / raw.sum(axis=1, keepdims=True)
    labels = draw(
        hnp.arrays(dtype=int, shape=n, elements=st.integers(0, num_target - 1))
    )
    # Guarantee at least two distinct target labels.
    labels[0], labels[1] = 0, 1
    return posterior, labels


@st.composite
def features_and_labels(draw, max_samples=50, max_dim=8, max_classes=4):
    n = draw(st.integers(min_value=6, max_value=max_samples))
    dim = draw(st.integers(min_value=2, max_value=max_dim))
    num_classes = draw(st.integers(min_value=2, max_value=max_classes))
    features = draw(
        hnp.arrays(
            dtype=float,
            shape=(n, dim),
            elements=st.floats(min_value=-5.0, max_value=5.0),
        )
    )
    labels = draw(hnp.arrays(dtype=int, shape=n, elements=st.integers(0, num_classes - 1)))
    labels[0], labels[1] = 0, 1
    return features, labels


class TestLeepProperties:
    @given(posterior_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_leep_is_finite_and_non_positive(self, data):
        posterior, labels = data
        score = leep_score(posterior, labels)
        assert np.isfinite(score)
        assert score <= 1e-9

    @given(posterior_and_labels())
    @settings(max_examples=30, deadline=None)
    def test_leep_invariant_to_source_permutation(self, data):
        posterior, labels = data
        permutation = np.random.default_rng(0).permutation(posterior.shape[1])
        assert np.isclose(
            leep_score(posterior, labels), leep_score(posterior[:, permutation], labels)
        )

    @given(posterior_and_labels())
    @settings(max_examples=30, deadline=None)
    def test_leep_bounded_below_by_log_num_target(self, data):
        """LEEP is an average log of a probability over target labels, so it
        can never be worse than predicting uniformly over the observed labels."""
        posterior, labels = data
        num_target = int(labels.max()) + 1
        assert leep_score(posterior, labels) >= np.log(1.0 / num_target) - 1e-6


class TestNceProperties:
    @given(posterior_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_nce_non_positive_and_bounded(self, data):
        posterior, labels = data
        score = nce_score(posterior, labels)
        num_target = int(labels.max()) + 1
        assert score <= 1e-9
        assert score >= -np.log(num_target) - 1e-6


class TestHScoreProperties:
    @given(features_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_hscore_non_negative_and_bounded_by_dim(self, data):
        features, labels = data
        value = h_score(features, labels)
        assert value >= -1e-6
        assert value <= features.shape[1] + 1.0


class TestKnnProperties:
    @given(features_and_labels(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_knn_accuracy_in_unit_interval(self, data, k):
        features, labels = data
        value = knn_transfer_accuracy(features, labels, k=k)
        assert 0.0 <= value <= 1.0


class TestNormalizationProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_min_max_in_unit_interval_and_order_preserving(self, values):
        normalised = min_max_normalize(values)
        assert np.all(normalised >= 0.0) and np.all(normalised <= 1.0)
        order_before = np.argsort(np.argsort(values, kind="stable"), kind="stable")
        # Order preservation: a larger raw value never maps to a smaller output.
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] < values[j]:
                    assert normalised[i] <= normalised[j] + 1e-12

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_normalize_in_unit_interval(self, values):
        normalised = rank_normalize(values)
        assert np.all(normalised >= 0.0) and np.all(normalised <= 1.0)
