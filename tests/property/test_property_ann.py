"""Property-based tests for the IVF ANN index (repro.ann)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ann import IVFIndex, exact_search, recall_at_k


@st.composite
def databases(draw, min_points=4, max_points=60, max_dim=8):
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    return draw(
        hnp.arrays(
            dtype=float,
            shape=(n, dim),
            elements=st.floats(min_value=-50.0, max_value=50.0),
        )
    )


class TestIVFProperties:
    @given(databases(), st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_full_probing_equals_exact(self, vectors, k):
        index = IVFIndex(vectors, seed=0)
        query = vectors[0] + 0.5
        ids, distances = index.search(query, k, nprobe=index.nlist)
        exact_ids, exact_d = exact_search(vectors, query, k)
        assert np.array_equal(ids, exact_ids)
        assert np.array_equal(distances, exact_d)

    @given(databases(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_pruned_results_are_a_subset_with_exact_distances(self, vectors, nprobe):
        index = IVFIndex(vectors, seed=0)
        query = vectors[-1] * 0.9
        k = min(5, vectors.shape[0])
        ids, distances = index.search(query, k, nprobe=nprobe)
        assert len(ids) == k  # never shorter than exact search's result
        deltas = vectors[ids] - query
        assert np.array_equal(
            distances, np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        )
        assert np.all(np.diff(distances) >= 0)

    @given(databases(min_points=8))
    @settings(max_examples=30, deadline=None)
    def test_fallback_is_lossless(self, vectors):
        # k close to n forces the short-candidate fallback under one probe.
        index = IVFIndex(vectors, seed=0)
        k = vectors.shape[0] - 1
        query = vectors.mean(axis=0)
        ids, distances = index.search(query, k, nprobe=1)
        exact_ids, exact_d = exact_search(vectors, query, k)
        assert np.array_equal(ids, exact_ids)
        assert np.array_equal(distances, exact_d)

    @given(databases(min_points=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_recall_at_k_bounds_and_monotonicity(self, vectors, k):
        index = IVFIndex(vectors, seed=0)
        queries = vectors[: min(8, vectors.shape[0])]
        low = recall_at_k(index, queries, k, nprobe=1)
        full = recall_at_k(index, queries, k, nprobe=index.nlist)
        assert 0.0 <= low <= 1.0
        assert full == 1.0

    @given(databases(min_points=5))
    @settings(max_examples=25, deadline=None)
    def test_added_vectors_are_retrievable(self, vectors):
        index = IVFIndex(vectors, seed=0)
        new = vectors.mean(axis=0) + 1.0
        new_id = index.add(new)
        ids, distances = index.search(new, 1, nprobe=index.nlist)
        assert distances[0] == 0.0
        # An existing row may coincide exactly with ``new``; ties break
        # towards the lower id, so assert on the vector, not the id.
        assert ids[0] == new_id or np.array_equal(
            np.asarray(vectors[ids[0]], dtype=float), new
        )
