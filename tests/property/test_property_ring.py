"""Property suite: the consistent-hash ring's routing invariants.

The routed serving tier rests on three ring properties, and each is
stated here as a law over *random* node sets and key populations rather
than a handful of examples:

* **determinism / order-independence** — placement is a pure function of
  the (key, node-set) pair: any insertion order, any interleaving of
  adds and removes that reaches the same node set, the same assignment;
* **minimal movement** — adding a node steals keys only *for* that node,
  removing a node moves only the keys it owned, and the stolen fraction
  concentrates around K/N (that is the "consistent" in consistent
  hashing — a rebalance invalidates the fewest warm sessions);
* **co-location** — equal routing keys always land on one node, which is
  what lets every session of one ``(zoo_version, target)`` pair share a
  worker's warm pool.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distrib import HashRing, route_key

#: Node names: short non-empty tokens, unique per draw.
node_sets = st.lists(
    st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=8,
    unique=True,
)

keys = st.lists(
    st.text(min_size=0, max_size=32), min_size=1, max_size=128, unique=True
)


class TestRingDeterminism:
    @given(nodes=node_sets, population=keys, seed=st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_never_changes_placement(
        self, nodes, population, seed
    ):
        shuffled = list(nodes)
        seed.shuffle(shuffled)
        assert (
            HashRing(nodes).assignments(population)
            == HashRing(shuffled).assignments(population)
        )

    @given(nodes=node_sets, population=keys, extra=st.text(min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_add_then_remove_restores_every_placement(
        self, nodes, population, extra
    ):
        if extra in nodes:
            return
        ring = HashRing(nodes)
        before = ring.assignments(population)
        ring.add(extra)
        ring.remove(extra)
        assert ring.assignments(population) == before


class TestRingMinimalMovement:
    @given(nodes=node_sets, population=keys, extra=st.text(min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_adding_a_node_only_steals_keys_for_it(
        self, nodes, population, extra
    ):
        if extra in nodes:
            return
        ring = HashRing(nodes)
        before = ring.assignments(population)
        ring.add(extra)
        after = ring.assignments(population)
        for key in population:
            # A key either kept its owner or moved TO the new node; no
            # key is shuffled between two pre-existing nodes.
            assert after[key] == before[key] or after[key] == extra

    @given(nodes=node_sets, population=keys, victim_index=st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_removing_a_node_only_moves_its_own_keys(
        self, nodes, population, victim_index
    ):
        if len(nodes) < 2:
            return
        victim = nodes[victim_index % len(nodes)]
        ring = HashRing(nodes)
        before = ring.assignments(population)
        ring.remove(victim)
        after = ring.assignments(population)
        for key in population:
            if before[key] == victim:
                assert after[key] != victim
            else:
                assert after[key] == before[key]

    def test_movement_fraction_concentrates_around_one_over_n(self):
        """~K/N movement on rebalance, measured on a fixed population
        large enough for the law of large numbers to bite (kept out of
        hypothesis: the bound is statistical, not per-example)."""
        population = [f"key-{index}" for index in range(4000)]
        nodes = [f"w{index}" for index in range(4)]
        ring = HashRing(nodes)
        before = ring.assignments(population)
        ring.add("w4")
        after = ring.assignments(population)
        moved = sum(1 for key in population if before[key] != after[key])
        # Ideal is K/(N+1) = 800 of 4000; allow generous slack for the
        # variance of 64 virtual nodes, but far below a full reshuffle.
        assert moved <= len(population) * 0.45
        assert moved > 0


class TestRingColocation:
    @given(
        nodes=node_sets,
        version=st.text(min_size=1, max_size=12),
        target=st.text(min_size=1, max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_route_keys_share_a_worker(self, nodes, version, target):
        ring = HashRing(nodes)
        key = route_key(version, target)
        owners = {ring.lookup(key) for _ in range(5)}
        assert len(owners) == 1
        # And a freshly-derived ring (a restarted router) agrees.
        assert HashRing(list(reversed(nodes))).lookup(key) in owners
