"""Marker plumbing for the property-test tier.

Everything under ``tests/property/`` is hypothesis-based and is
automatically tagged with the ``property`` marker, so the fast CI tier can
deselect the whole randomized tier with ``-m "not property"`` without each
module repeating a ``pytestmark`` line.
"""

import pathlib

import pytest

_PROPERTY_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # The hook sees the whole session's items; only tag the ones that live
    # under this directory.
    for item in items:
        if _PROPERTY_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.property)
