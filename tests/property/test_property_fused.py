"""Property suite: fused training is invisible except in speed.

The stacked-kernel engine of :mod:`repro.nn.batched` claims bitwise
equivalence with the per-session serial path.  Hypothesis drives that
claim across the surfaces where it could break:

* **Engine level** — random geometry mixes (optimizer, architecture,
  activation, group size, epoch splits) trained fused must reproduce the
  serial per-head trajectories exactly: curves, training histories,
  parameters, optimiser state.
* **Scheduler level** — random request mixes on every executor backend
  with fusion on must answer bitwise-identically to the serial two-phase
  selector, with charged-epoch accounting intact (charged = trained +
  reused in the pool report).
* **Crash/resume** — a scheduler killed mid-run and recovered with fusion
  on must replay its journal to the exact serial answer without double
  charging.
* **Speculation** — extrapolation prune decisions (which arms, at which
  epochs, at what predicted regret) must not move when rounds train
  fused.
"""

import dataclasses
import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.nn.batched import FusedSessionGroup
from repro.persist import (
    PlanJournal,
    PlanStore,
    SimulatedCrash,
    install_hook,
    remove_hook,
)
from repro.sched import EpochScheduler, SchedulerConfig
from repro.zoo.finetune import FineTuneConfig, FineTuner

TARGETS = ["mnli", "boolq"]

_store_ids = itertools.count()


@pytest.fixture(scope="module")
def artifacts(nlp_hub_small, nlp_suite_small, test_pipeline_config, fine_tuner):
    return OfflineArtifacts.build(
        nlp_hub_small,
        nlp_suite_small,
        config=test_pipeline_config,
        fine_tuner=fine_tuner,
    )


@pytest.fixture(scope="module")
def serial_oracle(artifacts):
    selector = TwoPhaseSelector(artifacts)
    return {
        (target, top_k): selector.select(target, top_k=top_k)
        for target in TARGETS
        for top_k in (None, 3, 5)
    }


def assert_bitwise_equal(result, serial):
    """Full structural equality of two TwoPhaseResult records."""
    assert result.selected_model == serial.selected_model
    assert result.selected_accuracy == serial.selected_accuracy
    assert (
        result.selection.selected_val_accuracy
        == serial.selection.selected_val_accuracy
    )
    assert result.selection.runtime_epochs == serial.selection.runtime_epochs
    assert result.selection.num_candidates == serial.selection.num_candidates
    assert result.selection.stages == serial.selection.stages
    assert result.selection.final_accuracies == serial.selection.final_accuracies
    assert result.recall.recalled_models == serial.recall.recalled_models
    assert result.recall.recall_scores == serial.recall.recall_scores
    assert result.recall.epoch_cost == serial.recall.epoch_cost
    assert result.total_cost == serial.total_cost


# --------------------------------------------------------------------------- #
# engine level: random geometry mixes
# --------------------------------------------------------------------------- #

geometry = st.fixed_dictionaries(
    {
        "optimizer": st.sampled_from(["sgd", "momentum", "adam"]),
        "activation": st.sampled_from(["relu", "tanh"]),
        "hidden_dims": st.sampled_from([(), (8,), (12, 6)]),
        "learning_rate": st.sampled_from([5e-2, 1e-2]),
        "count": st.integers(min_value=2, max_value=4),
    }
)


class TestEngineGeometryMixes:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        geometries=st.lists(geometry, min_size=1, max_size=3),
        epoch_split=st.sampled_from([(3,), (1, 2), (2, 1), (1, 1, 1)]),
    )
    def test_fused_groups_match_serial_sessions(
        self, nlp_hub_small, nlp_suite_small, geometries, epoch_split
    ):
        """Every drawn geometry trains fused == serial, bitwise, even when
        the fused advance is split into several staged calls."""
        task = nlp_suite_small.task("sst2")
        names = nlp_hub_small.model_names

        for spec in geometries:
            config = FineTuneConfig(
                epochs=5,
                optimizer=spec["optimizer"],
                activation=spec["activation"],
                hidden_dims=spec["hidden_dims"],
                learning_rate=spec["learning_rate"],
            )
            chosen = names[: spec["count"]]
            serial = [
                FineTuner(config, seed=0).start_session(nlp_hub_small.get(n), task)
                for n in chosen
            ]
            fused = [
                FineTuner(config, seed=0).start_session(nlp_hub_small.get(n), task)
                for n in chosen
            ]
            for session in serial:
                session.train_epochs(sum(epoch_split))
            group = FusedSessionGroup(fused)
            for index, epochs in enumerate(epoch_split):
                group.advance(epochs, probe=(index == 0))
            for a, b in zip(serial, fused):
                assert a.curve.train_loss == b.curve.train_loss
                assert a.curve.val_accuracy == b.curve.val_accuracy
                assert a.curve.test_accuracy == b.curve.test_accuracy
                assert a.head.history.train_loss == b.head.history.train_loss
                assert (
                    a.head.history.train_accuracy == b.head.history.train_accuracy
                )
                for pa, pb in zip(a.head.net.params(), b.head.net.params()):
                    assert np.array_equal(pa, pb)


# --------------------------------------------------------------------------- #
# scheduler level: request mixes x backends
# --------------------------------------------------------------------------- #

requests_strategy = st.lists(
    st.tuples(st.sampled_from(TARGETS), st.sampled_from([None, 3, 5])),
    min_size=1,
    max_size=5,
)


class TestSchedulerEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        mix=requests_strategy,
        backend=st.sampled_from(["serial", "thread:2", "thread:4", "process:2"]),
        epoch_budget=st.integers(min_value=2, max_value=12),
    )
    def test_fused_requests_equal_serial_runs(
        self, artifacts, serial_oracle, mix, backend, epoch_budget
    ):
        scheduler = EpochScheduler.for_artifacts(
            artifacts,
            config=SchedulerConfig(
                max_concurrent=4,
                epoch_budget=epoch_budget,
                max_queue=len(mix),
                fused_training=True,
            ),
            parallel=backend,
        )
        handles = [scheduler.submit(target, top_k=top_k) for target, top_k in mix]
        scheduler.run_until_idle()
        for (target, top_k), handle in zip(mix, handles):
            assert_bitwise_equal(
                scheduler.result(handle), serial_oracle[(target, top_k)]
            )
        # Charged-epoch accounting stays honest under fusion: every epoch
        # the pool trained this run is accounted to exactly one of the
        # fused or serial counters (probe_epochs tracks the *duplicated*
        # oracle compute separately — it never inflates the trained sum).
        stats = scheduler.stats()
        pool = stats["session_pool"]
        train = stats["train"]
        assert (
            train["fused_epochs"] + train["serial_epochs"]
            == pool["epochs_trained"]
        )


# --------------------------------------------------------------------------- #
# crash / resume with fusion on
# --------------------------------------------------------------------------- #


REPLAY_CONFIG = dict(
    max_concurrent=2, epoch_budget=4, max_queue=4, fused_training=True
)


@pytest.fixture(scope="module")
def step_counts(artifacts, tmp_path_factory):
    """Step-boundary count per (target, top_k), measured on clean fused runs."""
    counts = {}
    root = tmp_path_factory.mktemp("fused-count-store")
    for target in TARGETS:
        for top_k in (None, 3, 5):
            hits = {"n": 0}
            install_hook(
                "plan.step", lambda s, i: hits.__setitem__("n", hits["n"] + 1)
            )
            try:
                scheduler = EpochScheduler.for_artifacts(
                    artifacts,
                    persist=PlanStore(root / f"{target}-{top_k}"),
                    config=SchedulerConfig(**REPLAY_CONFIG),
                )
                scheduler.submit(target, top_k=top_k)
                scheduler.run_until_idle()
            finally:
                remove_hook("plan.step")
            counts[(target, top_k)] = hits["n"]
    return counts


class TestJournalReplay:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        target=st.sampled_from(TARGETS),
        top_k=st.sampled_from([None, 3, 5]),
        crash_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_crash_resume_with_fused_rounds(
        self, artifacts, serial_oracle, step_counts, tmp_path, target, top_k,
        crash_fraction,
    ):
        steps = step_counts[(target, top_k)]
        crash_ordinal = 1 + round(crash_fraction * (steps - 1))
        root = tmp_path / f"store-{next(_store_ids)}"
        config = SchedulerConfig(**REPLAY_CONFIG)
        scheduler1 = EpochScheduler.for_artifacts(
            artifacts, persist=PlanStore(root), config=config
        )
        hits = {"n": 0}

        def _crash(site, _info):
            hits["n"] += 1
            if hits["n"] == crash_ordinal:
                raise SimulatedCrash(f"{site}#{crash_ordinal}")

        install_hook("plan.step", _crash)
        try:
            scheduler1.submit(target, top_k=top_k)
            with pytest.raises(SimulatedCrash):
                scheduler1.run_until_idle()
        finally:
            remove_hook("plan.step")

        store = PlanStore(root)
        replayable = sum(
            record["payload"]["epochs"]
            for path in store.journal_paths()
            for record in PlanJournal(path).of_type("step")
        )
        scheduler2 = EpochScheduler.for_artifacts(
            artifacts, persist=store, config=config
        )
        recovered = scheduler2.recover()
        assert len(recovered) == 1
        scheduler2.run_until_idle()
        result = scheduler2.result(recovered[0], timeout=10)
        assert_bitwise_equal(result, serial_oracle[(target, top_k)])
        # No double charging: replayed epochs come from snapshots, so the
        # resumed scheduler trains at most (total - replayed) new epochs.
        pool = scheduler2.stats()["session_pool"]
        assert pool["epochs_trained"] <= max(
            0, result.selection.runtime_epochs - replayable
        ) + pool["epochs_reused"]


# --------------------------------------------------------------------------- #
# speculation: prune decisions are fusion-invariant
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def speculative_artifacts(artifacts):
    """Successive-halving ablation (trend filter off) — see the
    extrapolation property suite for why speculation needs it."""
    config = artifacts.config
    return dataclasses.replace(
        artifacts,
        config=dataclasses.replace(
            config,
            fine_selection=dataclasses.replace(
                config.fine_selection, use_trend_filter=False
            ),
        ),
    )


class TestExtrapolationDecisions:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        target=st.sampled_from(TARGETS),
        top_k=st.sampled_from([5, 8]),
        backend=st.sampled_from(["serial", "thread:2"]),
    )
    def test_prune_decisions_identical_with_and_without_fusion(
        self, speculative_artifacts, target, top_k, backend
    ):
        def run(fused):
            scheduler = EpochScheduler.for_artifacts(
                speculative_artifacts,
                config=SchedulerConfig(
                    max_concurrent=1,
                    max_queue=1,
                    fused_training=fused,
                ),
                parallel=backend,
            )
            handle = scheduler.submit(target, top_k=top_k, extrapolate=True)
            scheduler.run_until_idle()
            return scheduler.result(handle)

        fused_result = run(True)
        plain_result = run(False)
        assert fused_result.selected_model == plain_result.selected_model
        assert fused_result.selection.stages == plain_result.selection.stages
        assert (
            fused_result.selection.runtime_epochs
            == plain_result.selection.runtime_epochs
        )
        assert fused_result.selection.extras == plain_result.selection.extras
