"""Unit tests of the memory-mapped matrix store (`repro.store`)."""

import numpy as np
import pytest

from repro.cache.store import DiskCache
from repro.store import (
    MatrixStore,
    configure_store,
    get_store,
    iter_row_blocks,
    peek_store,
    resolve_store,
)
from repro.utils.exceptions import ConfigurationError, DataError


@pytest.fixture()
def store(tmp_path):
    return MatrixStore(tmp_path / "store")


def test_iter_row_blocks_covers_every_row():
    assert list(iter_row_blocks(5, 2)) == [(0, 2), (2, 4), (4, 5)]
    assert list(iter_row_blocks(0, 4)) == []
    assert list(iter_row_blocks(3, 10)) == [(0, 3)]


def test_iter_row_blocks_rejects_bad_block():
    with pytest.raises(ConfigurationError):
        list(iter_row_blocks(4, 0))


def test_create_commit_open_roundtrip(store):
    writer = store.create("sim:performance:k=5:abc", (3, 3))
    writer.array[:] = np.arange(9.0).reshape(3, 3)
    published = writer.commit()
    assert isinstance(published, np.memmap)
    reopened = store.open("sim:performance:k=5:abc")
    assert np.array_equal(reopened, np.arange(9.0).reshape(3, 3))
    assert "sim:performance:k=5:abc" in store
    # Published maps are read-only.
    with pytest.raises(ValueError):
        reopened[0, 0] = 1.0


def test_commit_is_atomic_no_partial_file_visible(store):
    writer = store.create("key", (2, 2))
    writer.array[:] = 1.0
    # Until commit, open() misses: only the tmp file exists.
    assert store.open("key") is None
    writer.commit()
    assert store.open("key") is not None


def test_abort_discards_tmp_file(store):
    writer = store.create("key", (2, 2))
    tmp = writer.tmp_path
    assert tmp.exists()
    writer.abort()
    assert not tmp.exists()
    assert store.open("key") is None


def test_key_sanitisation_matches_disk_cache(store, tmp_path):
    """One cache key maps to the same file stem in both disk tiers."""
    key = "sim:performance:k=5:0123abcd"
    disk = DiskCache(tmp_path / "cache")
    disk.put(key, np.zeros((2, 2)))
    cache_file = next((tmp_path / "cache").glob("*.npy"))
    assert store.path_for(key).name == cache_file.name


def test_open_corrupt_file_behaves_like_miss(store):
    path = store.path_for("broken")
    path.write_bytes(b"this is not a npy file")
    assert store.open("broken") is None
    # And the slot is recoverable by writing again.
    writer = store.create("broken", (1, 1))
    writer.array[:] = 7.0
    writer.commit()
    assert float(store.open("broken")[0, 0]) == 7.0


def test_evict_while_reader_holds_map(store):
    writer = store.create("key", (2, 2))
    writer.array[:] = 3.0
    reader = writer.commit()
    assert store.evict("key") is True
    # POSIX unlink: the held mapping stays valid until released...
    assert float(reader[1, 1]) == 3.0
    # ...but new opens miss.
    assert store.open("key") is None
    assert store.evict("key") is False


def test_evict_matching_by_fingerprint_fragment(store):
    for fingerprint in ("aaa111", "bbb222"):
        for kind in ("sim:performance:k=5:", "dist:sim:performance:k=5:"):
            writer = store.create(kind + fingerprint, (1, 1))
            writer.array[:] = 0.0
            writer.commit()
    assert store.evict_matching("aaa111") == 2
    assert store.open("sim:performance:k=5:aaa111") is None
    assert store.open("sim:performance:k=5:bbb222") is not None
    assert store.evict_matching("nothing-here") == 0


def test_clear_removes_published_and_tmp_files(store):
    writer = store.create("a", (1, 1))
    writer.array[:] = 0.0
    writer.commit()
    dangling = store.create("b", (1, 1))  # never committed
    store.clear()
    assert store.open("a") is None
    assert not dangling.tmp_path.exists()


def test_bytes_stored_counts_published_matrices(store):
    assert store.bytes_stored() == 0
    writer = store.create("a", (4, 4))
    writer.array[:] = 0.0
    writer.commit()
    assert store.bytes_stored() >= 4 * 4 * 8


def test_scratch_matrix_is_deleted_on_close(store):
    scratch = store.scratch((2, 2))
    scratch.array[:] = 5.0
    path = scratch.path
    assert path.exists()
    scratch.close()
    assert not path.exists()


def test_scratch_matrix_context_manager(store):
    with store.scratch((2, 2)) as work:
        work[:] = 1.0
        assert work.sum() == 4.0


def test_resolve_store_variants(store, tmp_path):
    assert resolve_store(store) is store
    resolved = resolve_store(tmp_path / "elsewhere")
    assert isinstance(resolved, MatrixStore)
    with pytest.raises(DataError):
        resolve_store(42)


def test_default_store_from_env(tmp_path, monkeypatch):
    import repro.store.matrix as matrix_module

    monkeypatch.setattr(matrix_module, "_default_store", None)
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "persistent"))
    assert get_store().root == tmp_path / "persistent"
    assert peek_store() is get_store()
    replacement = configure_store(tmp_path / "other")
    assert get_store() is replacement


def test_peek_store_never_builds_one(monkeypatch):
    import repro.store.matrix as matrix_module

    monkeypatch.setattr(matrix_module, "_default_store", None)
    assert peek_store() is None
