"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.exceptions import ConfigurationError, DataError
from repro.utils.validation import (
    check_fraction,
    check_labels,
    check_positive,
    check_probability_matrix,
    check_same_length,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_rejects_negative_even_when_not_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, strict=False)


class TestCheckFraction:
    def test_accepts_bounds_inclusive(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0

    def test_rejects_bounds_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_fraction("f", 0.0, inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_fraction("f", 1.2)


class TestCheckSameLength:
    def test_accepts_equal(self):
        check_same_length("a", [1, 2], "b", [3, 4])

    def test_rejects_unequal(self):
        with pytest.raises(DataError, match="same length"):
            check_same_length("a", [1], "b", [1, 2])


class TestCheckProbabilityMatrix:
    def test_accepts_valid_rows(self):
        matrix = np.array([[0.2, 0.8], [0.5, 0.5]])
        out = check_probability_matrix("p", matrix)
        assert out.shape == (2, 2)

    def test_rejects_negative(self):
        with pytest.raises(DataError, match="negative"):
            check_probability_matrix("p", np.array([[1.2, -0.2]]))

    def test_rejects_rows_not_summing_to_one(self):
        with pytest.raises(DataError, match="sum to 1"):
            check_probability_matrix("p", np.array([[0.4, 0.4]]))

    def test_rejects_wrong_dimensions(self):
        with pytest.raises(DataError):
            check_probability_matrix("p", np.array([0.5, 0.5]))


class TestCheckLabels:
    def test_accepts_valid(self):
        labels = check_labels("y", np.array([0, 1, 2]), 3)
        assert labels.dtype.kind == "i"

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            check_labels("y", np.array([0, 3]), 3)

    def test_rejects_wrong_shape(self):
        with pytest.raises(DataError):
            check_labels("y", np.array([[0, 1]]), 2)
