"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("step"):
            time.sleep(0.01)
        with watch.measure("step"):
            time.sleep(0.01)
        assert watch.counts["step"] == 2
        assert watch.timings["step"] >= 0.015

    def test_total_sums_sections(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        with watch.measure("b"):
            pass
        assert watch.total() == watch.timings["a"] + watch.timings["b"]

    def test_report_lines_sorted_by_name(self):
        watch = Stopwatch()
        with watch.measure("zeta"):
            pass
        with watch.measure("alpha"):
            pass
        lines = watch.report_lines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha")

    def test_exception_still_recorded(self):
        watch = Stopwatch()
        try:
            with watch.measure("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert "failing" in watch.timings
