"""Tests for the exception hierarchy."""

import pytest

from repro.utils.exceptions import (
    ConfigurationError,
    DataError,
    HubError,
    ReproError,
    SelectionError,
)


@pytest.mark.parametrize(
    "exception_type",
    [ConfigurationError, DataError, HubError, SelectionError],
)
def test_all_errors_derive_from_repro_error(exception_type):
    assert issubclass(exception_type, ReproError)


def test_errors_carry_messages():
    error = SelectionError("empty candidate pool")
    assert "empty candidate pool" in str(error)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(ReproError):
        raise DataError("bad shape")
