"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_rng, stable_hash


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(7).integers(0, 1000, size=5)
        b = as_generator(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_existing_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert as_generator(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(42)
        a = factory.named("model", "bert").integers(0, 10**6, size=4)
        b = factory.named("model", "bert").integers(0, 10**6, size=4)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        factory = RngFactory(42)
        a = factory.named("model", "bert").integers(0, 10**6, size=8)
        b = factory.named("model", "roberta").integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_different_root_seeds_differ(self):
        a = RngFactory(1).named("x").integers(0, 10**6, size=8)
        b = RngFactory(2).named("x").integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_seed_for_stable(self):
        factory = RngFactory(5)
        assert factory.seed_for("a", 1) == factory.seed_for("a", 1)
        assert factory.seed_for("a", 1) != factory.seed_for("a", 2)

    def test_root_seed_property(self):
        assert RngFactory(9).root_seed == 9


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_distinct_inputs(self):
        assert stable_hash("hello") != stable_hash("world")

    def test_non_negative(self):
        assert stable_hash("anything") >= 0


def test_spawn_rng_returns_generator():
    child = spawn_rng(np.random.default_rng(0), "child")
    assert isinstance(child, np.random.Generator)
