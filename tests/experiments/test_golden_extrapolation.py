"""Golden regression of the speculative early-stopping honesty report.

``golden/extrapolation_regret.json`` snapshots, on the seeded 12-model CV
zoo, exactly what the budget-honesty layer records when curve-extrapolation
pruning is enabled: which arms were retired, the predicted-vs-realized
regret of every retirement, the epochs-saved bound, and the winner of both
the exact and the speculative run.  Any drift in the bound math, the prune
bar, or the trend miner changes these numbers and fails loudly.

Two gates ride along:

* the *exact* scheduled run must keep selecting the model the blocking
  serial path selects (speculation is strictly opt-in), and
* the default-mode Table VI selection (paper configuration, no ablation)
  must still match its own golden snapshot ``golden/table6_end_to_end.json``
  — the end-to-end proof that this subsystem changed nothing it did not
  explicitly opt into.  (``test_golden_regression.py`` re-derives that
  snapshot from scratch; here we only cross-check the selected model.)

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/experiments/test_golden_extrapolation.py
"""

import dataclasses
import json
import os
import pathlib

import numpy as np
import pytest

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.experiments.context import ExperimentContext
from repro.sched import EpochScheduler, SchedulerConfig
from repro.zoo.finetune import FineTuner

pytestmark = [pytest.mark.golden, pytest.mark.extrapolation]

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN", "") == "1"

#: Request shapes the snapshot covers (CV targets of the reduced zoo).
TARGETS = ("beans", "chest_xray_classification")
TOP_K = 8


@pytest.fixture(scope="module")
def context():
    """The seeded zoo the snapshots were taken on (reduced CV repository)."""
    return ExperimentContext(modality="cv", scale="small", num_models=12)


@pytest.fixture(scope="module")
def spec_artifacts(context):
    """Halving-ablation artifacts (trend filter off) over the cached zoo.

    With the paper's trend filter on, Algorithm 1 collapses the cohort to
    one arm after the first rung and speculation has nothing to retire —
    the same ablation the benchmark and the property tier use.
    """
    config = context.config
    config = dataclasses.replace(
        config,
        fine_selection=dataclasses.replace(
            config.fine_selection, use_trend_filter=False
        ),
    )
    return OfflineArtifacts(
        hub=context.hub,
        suite=context.suite,
        matrix=context.matrix,
        clustering=context.clustering,
        config=config,
    )


def _normalize(obj):
    """JSON-stable form: floats as repr strings (exact round-trip), NaN safe."""
    if isinstance(obj, dict):
        return {str(key): _normalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalize(value) for value in obj]
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return "NaN" if value != value else repr(value)
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    return obj


def run_scheduled(artifacts, target, *, extrapolate):
    scheduler = EpochScheduler.for_artifacts(
        artifacts,
        fine_tuner=FineTuner(seed=0),
        config=SchedulerConfig(max_concurrent=1, max_queue=1),
    )
    handle = scheduler.submit(target, top_k=TOP_K, extrapolate=extrapolate)
    scheduler.run_until_idle()
    return scheduler.result(handle)


class TestGoldenExtrapolationRegret:
    def test_regret_report_matches_golden(self, context, spec_artifacts):
        selector = TwoPhaseSelector(spec_artifacts, fine_tuner=FineTuner(seed=0))
        records = {}
        for target in TARGETS:
            serial = selector.select(target, top_k=TOP_K)
            exact = run_scheduled(spec_artifacts, target, extrapolate=False)
            speculative = run_scheduled(spec_artifacts, target, extrapolate=True)

            # Gate: exact scheduled == serial blocking path, bitwise.
            assert exact.selected_model == serial.selected_model
            assert exact.selected_accuracy == serial.selected_accuracy
            assert exact.selection.stages == serial.selection.stages
            assert exact.selection.extras == serial.selection.extras

            records[target] = {
                "top_k": TOP_K,
                "exact": {
                    "selected_model": exact.selected_model,
                    "selected_accuracy": exact.selected_accuracy,
                    "selected_val_accuracy": exact.selection.selected_val_accuracy,
                    "runtime_epochs": exact.selection.runtime_epochs,
                },
                "speculative": {
                    "selected_model": speculative.selected_model,
                    "selected_accuracy": speculative.selected_accuracy,
                    "selected_val_accuracy": (
                        speculative.selection.selected_val_accuracy
                    ),
                    "runtime_epochs": speculative.selection.runtime_epochs,
                    "extras": speculative.selection.extras.get(
                        "extrapolation", {}
                    ),
                },
            }
            # The snapshot must exercise the honesty layer, not record a
            # vacuous no-prune run.
            assert records[target]["speculative"]["extras"].get("pruned")

        payload = _normalize(records)
        path = GOLDEN_DIR / "extrapolation_regret.json"
        if UPDATE:
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        assert path.exists(), (
            f"golden snapshot {path} is missing; regenerate it with "
            "REPRO_UPDATE_GOLDEN=1 and commit it"
        )
        golden = json.loads(path.read_text())
        assert payload == golden, (
            "extrapolation regret drifted from its golden snapshot. If the "
            "change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 "
            "and commit the refreshed snapshot alongside the code change."
        )

    def test_default_mode_table6_selection_unchanged(self, context):
        """Paper-default configuration (trend filter on, no speculation):
        the end-to-end selection still matches the Table VI golden."""
        table6 = json.loads(
            (GOLDEN_DIR / "table6_end_to_end.json").read_text()
        )
        row = next(r for r in table6 if r["target"] == "beans")
        result = context.selector.select("beans", top_k=5)
        assert result.selected_model == row["model_2ph"]
        assert repr(float(result.selected_accuracy)) == row["acc_2ph"]
        assert repr(float(result.total_cost)) == row["runtime_2ph"]
        assert "extrapolation" not in result.selection.extras
