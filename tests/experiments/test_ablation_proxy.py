"""Tests for the proxy-score ablation experiment."""

import pytest

from repro.experiments import ablation_proxy
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(modality="cv", scale="small", num_models=10)


class TestAblationProxy:
    def test_runs_for_two_proxies(self, context):
        records = ablation_proxy.run(
            context, targets=["beans"], top_k=5, proxies=("leep", "knn")
        )
        arms = {record["proxy"] for record in records}
        assert arms == {"leep", "knn", "prior_only"}
        for record in records:
            assert 0.0 <= record["avg_recalled_acc"] <= 1.0
            assert 0.0 <= record["selected_accuracy"] <= 1.0
            assert record["runtime_epochs"] > 0

    def test_summarize_and_render(self, context):
        records = ablation_proxy.run(
            context, targets=["beans"], top_k=5, proxies=("leep",)
        )
        summary = ablation_proxy.summarize(records)
        assert set(summary) == {"leep", "prior_only"}
        text = ablation_proxy.render(records)
        assert "Ablation" in text
        assert "prior_only" in text

    def test_prior_only_ranks_by_average_accuracy(self, context):
        ranking = ablation_proxy._prior_only_ranking(context, top_k=3)
        averages = context.matrix.average_accuracies()
        assert ranking == sorted(averages, key=averages.get, reverse=True)[:3]
