"""Tests for the experiment context (memoisation and reduced configurations)."""

import pytest

from repro.experiments.context import (
    ExperimentContext,
    clear_context_cache,
    default_scale,
    get_context,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_context_cache()
    yield
    clear_context_cache()


class TestExperimentContext:
    def test_invalid_modality(self):
        with pytest.raises(ConfigurationError):
            ExperimentContext(modality="audio")

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            ExperimentContext(modality="nlp", scale="tiny")

    def test_offline_epochs_follow_modality(self):
        assert ExperimentContext("nlp").offline_epochs == 5
        assert ExperimentContext("cv").offline_epochs == 4

    def test_num_models_cap(self):
        context = ExperimentContext("nlp", scale="small", num_models=6)
        assert len(context.hub) == 6

    def test_artifacts_are_cached_per_context(self):
        context = ExperimentContext("cv", scale="small", num_models=6)
        assert context.matrix is context.matrix
        assert context.clustering is context.clustering
        assert context.selector is context.selector

    def test_target_ground_truth_covers_all_models_and_targets(self):
        context = ExperimentContext("cv", scale="small", num_models=5)
        truth = context.target_ground_truth()
        assert set(truth) == set(context.target_names)
        for curves in truth.values():
            assert set(curves) == set(context.hub.model_names)

    def test_best_target_model(self):
        context = ExperimentContext("cv", scale="small", num_models=5)
        best, accuracy = context.best_target_model("beans")
        assert best in context.hub.model_names
        assert accuracy == max(
            curve.final_test for curve in context.target_ground_truth()["beans"].values()
        )


class TestGetContext:
    def test_memoised_per_key(self):
        a = get_context("nlp", scale="small", num_models=4)
        b = get_context("nlp", scale="small", num_models=4)
        c = get_context("nlp", scale="small", num_models=5)
        assert a is b
        assert a is not c

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "small")
        assert default_scale() == "small"
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "bogus")
        assert default_scale() == "full"
        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE")
        assert default_scale() == "full"
