"""Tests running every experiment module on a reduced context.

These are behavioural smoke tests: each table/figure module must run end to
end on a small repository, return the expected record structure and render
to text.  The paper-shape assertions (who wins, by roughly what factor) live
in the benchmark harness, which runs at full scale.
"""

import pytest

from repro.experiments import (
    fig1_distribution,
    fig3_validation_curves,
    fig4_convergence_groups,
    fig5_recall_quality,
    fig6_trend_quality,
    fig7_selection_quality,
    table1_clustering_methods,
    table2_cluster_membership,
    table3_singleton_vs_non,
    table4_threshold,
    table5_runtime,
    table6_end_to_end,
    table7_case_study,
    tablex_topk_parameter,
)
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def context():
    """Reduced CV context (CV has the cheaper offline phase: 10 benchmarks)."""
    return ExperimentContext(modality="cv", scale="small", num_models=12)


class TestOfflineExperiments:
    def test_fig1(self, context):
        result = fig1_distribution.run(context)
        assert result["num_models"] == 12
        assert len(result["accuracies"]) == 12
        assert result["accuracies"] == sorted(result["accuracies"], reverse=True)
        assert "Fig. 1" in fig1_distribution.render(result)

    def test_table1(self, context):
        records = table1_clustering_methods.run({"cv": context})
        assert len(records) == 4
        combos = {(r["similarity"], r["method"]) for r in records}
        assert ("performance", "hierarchical") in combos
        assert ("text", "kmeans") in combos
        assert "Table I" in table1_clustering_methods.render(records)

    def test_table2(self, context):
        records = table2_cluster_membership.run(context)
        summary = table2_cluster_membership.run_summary(context)
        assert summary["num_models"] == 12
        total_members = sum(record["size"] for record in records)
        assert total_members == summary["num_models_in_non_singleton"]
        assert "Table II" in table2_cluster_membership.render(records)

    def test_table3(self, context):
        records = table3_singleton_vs_non.run(context)
        assert [r["cluster_type"] for r in records] == ["non-singleton", "singleton"]
        assert sum(r["num_models"] for r in records) == 12
        total_best = sum(r["num_best_models"] for r in records)
        assert total_best == len(context.benchmark_names)

    def test_tablex(self, context):
        records = tablex_topk_parameter.run(context)
        assert [r["k"] for r in records] == [3, 4, 5]
        assert "Table X" in tablex_topk_parameter.render(records)


class TestConvergenceExperiments:
    def test_fig4(self, context):
        result = fig4_convergence_groups.run(context)
        assert len(result["datasets"]) == len(context.benchmark_names)
        assert 1 <= result["num_trends"] <= 4
        assert "Fig. 4" in fig4_convergence_groups.render(result)

    def test_fig6(self, context):
        subset = context.hub.model_names[:3]
        records = fig6_trend_quality.run(context, model_names=subset)
        assert len(records) == 3
        summary = fig6_trend_quality.summarize(records)
        assert set(summary) == {
            "mean_validation_silhouette",
            "mean_random_silhouette",
            "mean_trend_prediction_error",
            "mean_global_mean_error",
        }
        assert "Fig. 6" in fig6_trend_quality.render(records)


class TestOnlineExperiments:
    def test_fig3(self, context):
        result = fig3_validation_curves.run(context, target_name="beans", top_k=4)
        assert len(result["recalled_models"]) == 4
        assert set(result["settings"]) == {"default", "low"}
        assert "Fig. 3/8" in fig3_validation_curves.render(result)

    def test_fig5(self, context):
        records = fig5_recall_quality.run(
            context, k_values=(3, 5), num_random_repeats=2, targets=["beans"]
        )
        assert len(records) == 2
        assert all(0 <= r["coarse_recall_avg_acc"] <= 1 for r in records)
        assert "Fig. 5" in fig5_recall_quality.render(records)

    def test_table4(self, context):
        records = table4_threshold.run(
            context, thresholds=(0.0, 0.1), targets=["beans"], top_k=5
        )
        assert len(records) == 2
        runtimes = [r["runtime_epochs"] for r in records]
        assert runtimes[0] <= runtimes[1]
        assert "Table IV" in table4_threshold.render(records)

    def test_fig7(self, context):
        records = fig7_selection_quality.run(
            context, targets=["beans"], top_k=5, include_full_repository=False
        )
        assert len(records) == 1
        record = records[0]
        assert record["worst_in_top10"] <= record["best_in_top10"]
        assert "Fig. 7" in fig7_selection_quality.render(records)

    def test_table5(self, context):
        records = table5_runtime.run(
            context, targets=["beans"], top_k=5, include_full_repository=False
        )
        by_method = {r["method"]: r for r in records}
        assert by_method["FS"]["runtime_epochs"] <= by_method["SH"]["runtime_epochs"]
        assert by_method["SH"]["runtime_epochs"] <= by_method["BF"]["runtime_epochs"]
        assert "Table V" in table5_runtime.render(records)

    def test_table6(self, context):
        records = table6_end_to_end.run(context, targets=["beans"], top_k=5)
        record = records[0]
        assert record["runtime_2ph"] < record["runtime_bf"]
        assert record["speedup_vs_bf"] > 1.0
        assert "Table VI" in table6_end_to_end.render(records)

    def test_table7(self, context):
        records = table7_case_study.run(context, targets=["beans"], top_k=5)
        record = records[0]
        assert record["rank_at_recall"] is not None
        assert 0 <= record["selected_accuracy"] <= 1
        assert record["best_accuracy"] >= record["selected_accuracy"] - 1e-9
        assert "Table VII" in table7_case_study.render(records)
