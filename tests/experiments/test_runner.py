"""Tests for the all-experiments runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, render_report, run_all


class TestRunnerRegistry:
    def test_every_paper_item_registered(self):
        expected = {
            "fig1", "table1", "table2", "table3", "fig3", "fig4", "fig5",
            "fig6", "table4", "fig7", "table5", "table6", "table7", "tablex",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_all(only=["table99"], scale="small", modalities=("cv",))


class TestRunAll:
    def test_subset_run_produces_text(self):
        outputs = run_all(only=["table3", "tablex"], scale="small", modalities=("cv",))
        assert set(outputs) == {"table3", "tablex"}
        assert "Table III" in outputs["table3"]
        assert "Table X" in outputs["tablex"]

    def test_render_report_concatenates(self):
        report = render_report({"a": "text-a", "b": "text-b"})
        assert "=== a ===" in report
        assert "text-b" in report
