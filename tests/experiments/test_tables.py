"""Tests for the text-table renderer."""

import pytest

from repro.experiments.tables import TextTable, render_records


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["alpha", 0.123456])
        table.add_row(["beta", 2])
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "0.123" in text
        assert "beta" in text

    def test_columns_aligned(self):
        table = TextTable(["a", "b"])
        table.add_row(["long-name", 1])
        table.add_row(["x", 2])
        lines = table.render().splitlines()
        # All data lines share the same separator position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_add_dict_row_fills_missing(self):
        table = TextTable(["a", "b"])
        table.add_dict_row({"a": 1})
        assert "-" in table.render()

    def test_wrong_cell_count_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])


def test_render_records():
    text = render_records(
        [{"x": 1, "y": 0.5}, {"x": 2, "y": 0.25}], ["x", "y"], title="records"
    )
    assert "records" in text
    assert "0.250" in text
