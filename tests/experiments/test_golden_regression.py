"""Golden regression tests for the reproduced tables and figures.

Snapshots of the Table I/II/VI and Fig. 5/7 record outputs on the seeded
12-model CV zoo live under ``tests/experiments/golden/``.  Every run
recomputes the records and compares them against the snapshot with
repr-exact float equality, so **any** numeric drift — a refactor that
reorders a reduction, a changed default, a perturbed seed — fails loudly
instead of silently changing the reproduced results.

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/experiments/test_golden_regression.py

and commit the refreshed JSON together with the change that justifies it.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.experiments import (
    fig5_recall_quality,
    fig7_selection_quality,
    table1_clustering_methods,
    table2_cluster_membership,
    table6_end_to_end,
)
from repro.experiments.context import ExperimentContext

pytestmark = pytest.mark.golden

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN", "") == "1"


@pytest.fixture(scope="module")
def context():
    """The seeded zoo the snapshots were taken on (reduced CV repository)."""
    return ExperimentContext(modality="cv", scale="small", num_models=12)


def _normalize(obj):
    """JSON-stable form: floats as repr strings (exact round-trip), NaN safe."""
    if isinstance(obj, dict):
        return {str(key): _normalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalize(value) for value in obj]
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return "NaN" if value != value else repr(value)
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    return obj


def _assert_matches_golden(name: str, records) -> None:
    payload = _normalize(records)
    path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists(), (
        f"golden snapshot {path} is missing; regenerate it with "
        "REPRO_UPDATE_GOLDEN=1 and commit it"
    )
    golden = json.loads(path.read_text())
    assert payload == golden, (
        f"{name} drifted from its golden snapshot {path.name}. If the change "
        "is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and commit the "
        "refreshed snapshot alongside the code change."
    )


class TestGoldenExperiments:
    def test_table1_clustering_methods(self, context):
        records = table1_clustering_methods.run({"cv": context})
        _assert_matches_golden("table1_clustering_methods", records)

    def test_table2_cluster_membership(self, context):
        records = table2_cluster_membership.run(context)
        summary = table2_cluster_membership.run_summary(context)
        _assert_matches_golden(
            "table2_cluster_membership", {"records": records, "summary": summary}
        )

    def test_table6_end_to_end(self, context):
        records = table6_end_to_end.run(context, targets=["beans"], top_k=5)
        _assert_matches_golden("table6_end_to_end", records)

    def test_fig5_recall_quality(self, context):
        records = fig5_recall_quality.run(
            context, k_values=(3, 5), num_random_repeats=2, targets=["beans"]
        )
        _assert_matches_golden("fig5_recall_quality", records)

    def test_fig7_selection_quality(self, context):
        records = fig7_selection_quality.run(
            context, targets=["beans"], top_k=5, include_full_repository=False
        )
        _assert_matches_golden("fig7_selection_quality", records)
