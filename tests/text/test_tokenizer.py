"""Tests for repro.text.tokenizer."""

from repro.text.tokenizer import tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_splits_model_names_into_pieces(self):
        tokens = tokenize("Jeevesh8/bert_ft_qqp-68")
        assert "bert" in tokens
        assert "qqp" in tokens
        assert "68" in tokens

    def test_removes_stopwords(self):
        tokens = tokenize("this is a model for the task")
        assert "the" not in tokens
        assert "model" in tokens

    def test_keeps_stopwords_when_disabled(self):
        tokens = tokenize("the model", remove_stopwords=False)
        assert "the" in tokens

    def test_min_length_filter(self):
        assert tokenize("a b cd", min_length=2) == ["cd"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! --- ...") == []
