"""Tests for repro.text.embedding."""

import numpy as np
import pytest

from repro.text.embedding import TextEmbedder, cosine_similarity, cosine_similarity_matrix
from repro.utils.exceptions import DataError


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert np.isclose(cosine_similarity(np.array([1.0, 2.0]), np.array([1.0, 2.0])), 1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            cosine_similarity(np.ones(2), np.ones(3))

    def test_matrix_diagonal_is_one(self):
        rows = np.random.default_rng(0).normal(size=(5, 4))
        similarity = cosine_similarity_matrix(rows)
        assert np.allclose(np.diag(similarity), 1.0)
        assert np.allclose(similarity, similarity.T)


class TestTextEmbedder:
    DOCS = {
        "bert-qqp": "bert model fine-tuned on the qqp paraphrase dataset",
        "bert-cola": "bert model fine-tuned on the cola acceptability dataset",
        "vit": "vision transformer pre-trained on imagenet images",
    }

    def test_similarity_reflects_content(self):
        embedder = TextEmbedder().fit(self.DOCS)
        assert embedder.similarity("bert-qqp", "bert-cola") > embedder.similarity(
            "bert-qqp", "vit"
        )

    def test_similarity_matrix_shape(self):
        embedder = TextEmbedder().fit(self.DOCS)
        assert embedder.similarity_matrix().shape == (3, 3)

    def test_names_preserved_in_order(self):
        embedder = TextEmbedder().fit(self.DOCS)
        assert list(embedder.names) == list(self.DOCS.keys())

    def test_unknown_name_rejected(self):
        embedder = TextEmbedder().fit(self.DOCS)
        with pytest.raises(DataError):
            embedder.similarity("bert-qqp", "unknown")

    def test_unfitted_rejected(self):
        with pytest.raises(DataError):
            TextEmbedder().embeddings()

    def test_empty_documents_rejected(self):
        with pytest.raises(DataError):
            TextEmbedder().fit({})
