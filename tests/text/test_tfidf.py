"""Tests for repro.text.tfidf.TfidfVectorizer."""

import numpy as np
import pytest

from repro.text.tfidf import TfidfVectorizer
from repro.utils.exceptions import DataError

CORPUS = [
    "bert model fine-tuned on qqp paraphrase detection",
    "bert model fine-tuned on cola acceptability",
    "vision transformer trained on imagenet",
    "roberta model pretrained with dynamic masking",
]


class TestTfidfVectorizer:
    def test_rows_are_unit_norm(self):
        matrix = TfidfVectorizer().fit_transform(CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_shape(self):
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(CORPUS)
        assert matrix.shape == (4, len(vectorizer.vocabulary_))

    def test_similar_documents_more_similar(self):
        matrix = TfidfVectorizer().fit_transform(CORPUS)
        similarity = matrix @ matrix.T
        assert similarity[0, 1] > similarity[0, 2]

    def test_max_features_caps_vocabulary(self):
        vectorizer = TfidfVectorizer(max_features=5)
        vectorizer.fit(CORPUS)
        assert len(vectorizer.vocabulary_) <= 5

    def test_min_df_filters_rare_terms(self):
        vectorizer = TfidfVectorizer(min_df=2)
        vectorizer.fit(CORPUS)
        assert "imagenet" not in vectorizer.vocabulary_
        assert "model" in vectorizer.vocabulary_

    def test_rare_term_has_higher_idf_than_common_term(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(CORPUS)
        idf = vectorizer.idf_
        assert idf[vectorizer.vocabulary_["qqp"]] > idf[vectorizer.vocabulary_["model"]]

    def test_transform_unknown_terms_ignored(self):
        vectorizer = TfidfVectorizer().fit(CORPUS)
        row = vectorizer.transform(["completely unrelated words xyzzy"])
        assert np.allclose(row, 0.0)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(DataError):
            TfidfVectorizer().transform(["text"])

    def test_empty_corpus_rejected(self):
        with pytest.raises(DataError):
            TfidfVectorizer().fit([])

    def test_feature_names_align_with_columns(self):
        vectorizer = TfidfVectorizer().fit(CORPUS)
        names = vectorizer.feature_names
        assert len(names) == len(vectorizer.vocabulary_)
        assert all(vectorizer.vocabulary_[name] == index for index, name in enumerate(names))
