"""Quickstart: select a pre-trained model for a new task with the two-phase pipeline.

Builds the simulated NLP model repository (40 checkpoints), runs the offline
phase (performance matrix + model clustering) and then answers a single
online query: "which checkpoint should I fine-tune for the MNLI-like target
task?".

Run with::

    python examples/quickstart.py [--small]
"""

from __future__ import annotations

import argparse
import time

from repro.core import PipelineConfig, TwoPhaseSelector
from repro.data import DataScale, nlp_suite
from repro.zoo import ModelHub


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true", help="use the small data scale (faster)"
    )
    parser.add_argument("--target", default="mnli", help="target dataset name")
    parser.add_argument("--top-k", type=int, default=10, help="models recalled in phase 1")
    args = parser.parse_args()

    scale = DataScale.small() if args.small else DataScale.default()
    suite = nlp_suite(seed=0, scale=scale)
    hub = ModelHub(suite, seed=0)
    print(f"Model repository: {len(hub)} NLP checkpoints")
    print(f"Benchmark datasets: {len(suite.benchmark_names)}, targets: {suite.target_names}")

    print("\n[offline] building performance matrix and model clusters ...")
    start = time.perf_counter()
    selector = TwoPhaseSelector.from_hub(hub, suite, config=PipelineConfig.for_modality("nlp"))
    print(f"[offline] done in {time.perf_counter() - start:.1f}s "
          f"({selector.cluster_summary()})")

    print(f"\n[online] selecting a model for target {args.target!r} ...")
    start = time.perf_counter()
    result = selector.select(args.target, top_k=args.top_k)
    elapsed = time.perf_counter() - start

    print(f"[online] done in {elapsed:.1f}s")
    print(f"  recalled models ({len(result.recall.recalled_models)}):")
    for rank, name in enumerate(result.recall.recalled_models, start=1):
        print(f"    {rank:2d}. {name} (recall score "
              f"{result.recall.recall_scores[name]:.3f})")
    print(f"  selected model : {result.selected_model}")
    print(f"  test accuracy  : {result.selected_accuracy:.3f}")
    print(f"  total cost     : {result.total_cost:.1f} epoch-equivalents "
          f"(vs {len(hub) * 5} epochs for brute force)")


if __name__ == "__main__":
    main()
