"""CV scenario: pick a vision backbone for a medical-imaging classification task.

The paper's CV evaluation selects among 30 vision checkpoints (ViT, DeiT,
BEiT, DINO, PoolFormer, DiNAT, VAN families) for out-of-domain targets such
as chest X-ray classification and MedMNIST.  This example runs the two-phase
pipeline for one of those targets and inspects *why* the recalled candidates
were chosen: their cluster, prior benchmark accuracy and proxy score.

Run with::

    python examples/cv_model_selection.py [--small] [--target chest_xray_classification]
"""

from __future__ import annotations

import argparse

from repro.core import PipelineConfig, TwoPhaseSelector
from repro.data import DataScale, cv_suite
from repro.zoo import ModelHub


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the small data scale")
    parser.add_argument(
        "--target",
        default="chest_xray_classification",
        choices=["chest_xray_classification", "medmnist_v2", "oxford_flowers", "beans"],
    )
    args = parser.parse_args()

    scale = DataScale.small() if args.small else DataScale.default()
    suite = cv_suite(seed=0, scale=scale)
    hub = ModelHub(suite, seed=0)
    print(f"Repository: {len(hub)} CV checkpoints; target: {args.target}")

    selector = TwoPhaseSelector.from_hub(hub, suite, config=PipelineConfig.for_modality("cv"))
    clustering = selector.artifacts.clustering
    matrix = selector.artifacts.matrix

    print("\nOffline model clusters (non-singleton):")
    for cluster_id, members in sorted(
        clustering.non_singleton_clusters().items(), key=lambda item: -len(item[1])
    ):
        representative = clustering.representative_of(cluster_id)
        print(f"  cluster {cluster_id} ({len(members)} models, representative "
              f"{representative.split('/')[-1]}): "
              + ", ".join(sorted(name.split("/")[-1] for name in members)))

    result = selector.select(args.target)
    print(f"\nRecalled candidates for {args.target} (top {len(result.recall.recalled_models)}):")
    print(f"{'model':55s} {'cluster':>7s} {'prior_acc':>9s} {'recall_score':>12s}")
    for name in result.recall.recalled_models:
        print(f"{name:55s} {clustering.cluster_of(name):7d} "
              f"{matrix.average_accuracy(name):9.3f} "
              f"{result.recall.recall_scores[name]:12.3f}")

    print(f"\nSelected checkpoint : {result.selected_model}")
    print(f"Test accuracy       : {result.selected_accuracy:.3f}")
    print(f"Total cost          : {result.total_cost:.1f} epoch-equivalents "
          f"(brute force would cost {len(hub) * 4} epochs)")
    print("\nStage-by-stage fine-selection log:")
    for stage in result.selection.stages:
        survivors = ", ".join(name.split("/")[-1] for name in stage.surviving_models)
        print(f"  stage {stage.stage}: kept {len(stage.surviving_models)} -> {survivors}")


if __name__ == "__main__":
    main()
