"""Extending the framework: plug a custom proxy score into the coarse-recall phase.

The paper uses LEEP as the lightweight proxy task and notes (future work)
that other proxy scores can be combined.  The coarse-recall phase resolves
its scorer through a registry, so adding a new transferability measure is a
matter of subclassing :class:`repro.metrics.ProxyScorer` and registering it.

This example registers a simple centroid-separation scorer, then compares
the recall quality (average ground-truth accuracy of the recalled models) of
LEEP, NCE, LogME, kNN and the custom scorer on one NLP target.

Run with::

    python examples/custom_proxy_score.py [--small]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import CoarseRecall, PipelineConfig
from repro.core.config import RecallConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.performance import build_performance_matrix
from repro.data import DataScale, nlp_suite
from repro.metrics import ProxyScorer, register_scorer
from repro.zoo import FineTuner, ModelHub


class CentroidSeparationScorer(ProxyScorer):
    """Ratio of between-class centroid spread to within-class spread.

    A crude Fisher-style criterion on the frozen representation: features
    whose class centroids are far apart relative to the in-class scatter
    should fine-tune well.
    """

    name = "centroid"
    uses_source_posterior = False

    def score_arrays(self, inputs: np.ndarray, labels: np.ndarray, *, num_classes: int) -> float:
        centroids = np.stack(
            [inputs[labels == cls].mean(axis=0) for cls in np.unique(labels)]
        )
        between = float(np.mean(np.linalg.norm(centroids - centroids.mean(axis=0), axis=1)))
        within = float(
            np.mean(
                [
                    np.linalg.norm(inputs[labels == cls] - centroid, axis=1).mean()
                    for cls, centroid in zip(np.unique(labels), centroids)
                ]
            )
        )
        return between / max(within, 1e-9)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the small data scale")
    parser.add_argument("--target", default="boolq")
    parser.add_argument("--top-k", type=int, default=10)
    args = parser.parse_args()

    register_scorer("centroid", CentroidSeparationScorer, overwrite=True)

    scale = DataScale.small() if args.small else DataScale.default()
    suite = nlp_suite(seed=0, scale=scale)
    hub = ModelHub(suite, seed=0)
    tuner = FineTuner(seed=0)
    task = suite.task(args.target)

    print("[offline] performance matrix + clustering")
    matrix = build_performance_matrix(hub, suite, fine_tuner=tuner, epochs=5)
    clustering = ModelClusterer(PipelineConfig.for_modality("nlp").clustering).cluster(
        matrix, model_cards=hub.model_cards()
    )

    print("[reference] ground-truth accuracy of every checkpoint on the target")
    truth = {
        model.name: tuner.fine_tune(model, task, epochs=5).final_test
        for model in hub.models()
    }

    print(f"\nrecall quality on {args.target} (top-{args.top_k}):")
    print(f"{'proxy score':12s} {'avg acc of recalled':>20s} {'best model recalled':>20s}")
    for proxy_name in ("leep", "nce", "logme", "knn", "centroid"):
        recall = CoarseRecall(
            hub,
            matrix,
            clustering,
            config=RecallConfig(proxy_score=proxy_name, top_k=args.top_k),
        ).recall(task)
        recalled = recall.recalled_models
        avg_acc = float(np.mean([truth[name] for name in recalled]))
        best_model = max(truth, key=truth.get)
        print(f"{proxy_name:12s} {avg_acc:20.3f} {str(best_model in recalled):>20s}")
    print(f"\nrepository average accuracy: {float(np.mean(list(truth.values()))):.3f}")
    print(f"best checkpoint: {max(truth, key=truth.get)} ({max(truth.values()):.3f})")


if __name__ == "__main__":
    main()
