"""NLP scenario: compare brute force, successive halving and the two-phase pipeline.

This mirrors the paper's end-to-end NLP experiment (Table VI): the target is
an MNLI-like natural-language-inference task and the repository holds 40
checkpoints ranging from strong general-purpose encoders to narrowly
fine-tuned or out-of-domain ones.  The script reports, for each selection
method, the selected checkpoint, its test accuracy after full fine-tuning
and the cost in fine-tuning epochs.

Run with::

    python examples/nlp_model_selection.py [--small] [--target mnli]
"""

from __future__ import annotations

import argparse

from repro.core import (
    BruteForceSelection,
    FineSelection,
    PipelineConfig,
    SuccessiveHalving,
    TwoPhaseSelector,
)
from repro.core.config import FineSelectionConfig
from repro.data import DataScale, nlp_suite
from repro.zoo import FineTuner, ModelHub


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the small data scale")
    parser.add_argument("--target", default="mnli", choices=["tweet_eval", "mnli", "multirc", "boolq"])
    args = parser.parse_args()

    scale = DataScale.small() if args.small else DataScale.default()
    suite = nlp_suite(seed=0, scale=scale)
    hub = ModelHub(suite, seed=0)
    tuner = FineTuner(seed=0)
    task = suite.task(args.target)
    config = PipelineConfig.for_modality("nlp")
    fs_config = FineSelectionConfig(total_epochs=5)

    print(f"Target task: {args.target} ({task.num_classes} classes, "
          f"{len(task.train)} train / {len(task.val)} val / {len(task.test)} test)")
    print(f"Repository : {len(hub)} checkpoints\n")

    print("[offline] building performance matrix + clustering (done once, reused for any target)")
    selector = TwoPhaseSelector.from_hub(hub, suite, config=config, fine_tuner=tuner)

    print("[1/3] brute force: fine-tune every checkpoint for 5 epochs")
    brute_force = BruteForceSelection(hub, tuner, config=fs_config).run(hub.model_names, task)

    print("[2/3] successive halving over the whole repository")
    halving = SuccessiveHalving(hub, tuner, config=fs_config).run(hub.model_names, task)

    print("[3/3] two-phase pipeline: coarse-recall (LEEP on cluster representatives) + fine-selection")
    two_phase = selector.select(args.target)

    print("\nmethod               selected model                                  acc    cost(epochs)")
    print("-" * 100)
    rows = [
        ("brute force", brute_force.selected_model, brute_force.selected_accuracy, brute_force.total_cost),
        ("successive halving", halving.selected_model, halving.selected_accuracy, halving.total_cost),
        ("two-phase (CR+FS)", two_phase.selected_model, two_phase.selected_accuracy, two_phase.total_cost),
    ]
    for method, model, accuracy, cost in rows:
        print(f"{method:20s} {model:47s} {accuracy:.3f}  {cost:6.1f}")
    print("\nspeedup of the two-phase pipeline: "
          f"{brute_force.total_cost / two_phase.total_cost:.1f}x vs brute force, "
          f"{halving.total_cost / two_phase.total_cost:.1f}x vs successive halving")
    print("recalled candidates were: "
          + ", ".join(name.split("/")[-1] for name in two_phase.recall.recalled_models))


if __name__ == "__main__":
    main()
