"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment harness (:mod:`repro.experiments.runner`) for both
the NLP and CV repositories and prints the rendered tables.  Use ``--small``
for a quick pass (smaller datasets) or ``--only`` to run a subset, e.g.::

    python examples/reproduce_paper.py --only table6 fig5
    python examples/reproduce_paper.py --small
"""

from __future__ import annotations

import argparse
import time

from repro.experiments.runner import EXPERIMENTS, render_report, run_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the small data scale")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(EXPERIMENTS),
        help="run only these experiment ids (default: all)",
    )
    parser.add_argument(
        "--modalities",
        nargs="*",
        default=["nlp", "cv"],
        choices=["nlp", "cv"],
        help="which repositories to evaluate",
    )
    parser.add_argument("--output", help="optional path to also write the report to")
    args = parser.parse_args()

    start = time.perf_counter()
    outputs = run_all(
        scale="small" if args.small else "full",
        only=args.only,
        modalities=tuple(args.modalities),
    )
    report = render_report(outputs)
    print(report)
    print(f"\n[reproduce_paper] finished in {time.perf_counter() - start:.1f}s")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"[reproduce_paper] report written to {args.output}")


if __name__ == "__main__":
    main()
