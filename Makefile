# Convenience targets; everything is plain pytest/python underneath.

PY := PYTHONPATH=src python

.PHONY: test test-fast test-fault test-distrib test-extrapolation test-all \
        ci ci-full \
        docs-check docs-api docs-api-check bench-parallel bench-incremental \
        bench-similarity bench-ooc bench-smoke bench-concurrent \
        bench-concurrent-smoke bench-resume bench-distrib \
        bench-distrib-smoke bench-cluster bench-cluster-smoke \
        bench-extrapolation bench-extrapolation-smoke bench-fused \
        bench-fused-smoke examples

# Tier-1 verify: the full suite (what CI runs on main).
test:
	$(PY) -m pytest -x -q

# Fast tier: skips the randomized property suite, the golden experiment
# snapshots, the crash-injection tier, the multi-process routed tier and
# slow integration runs — the loop for every-change CI.
test-fast:
	$(PY) -m pytest -x -q -m "not slow and not property and not golden and not faultinject and not distrib"

# Fault tier: the crash/fault-injection suite (kill at every durability
# boundary, corrupt journals, SIGKILL real serve processes) plus the
# randomized resume properties.  Its own CI job with a hard timeout — a
# wedged recovery path must fail fast, not hang a runner.
test-fault:
	$(PY) -m pytest -x -q tests/faultinject tests/property/test_property_resume.py

# Routed tier: protocol conformance against both deployment shapes, the
# SIGKILL-a-worker chaos suite and multi-tenant brownout — real router +
# worker processes throughout, so it gets its own CI job and timeout.
test-distrib:
	$(PY) -m pytest -x -q tests/distrib

# Speculative early-stopping tier: every test tagged `extrapolation` —
# bound-math units, Eq. 5/6 edge cases, the randomized honesty properties,
# the kill-at-every-prune-boundary crash suite and the golden regret
# snapshot (docs/extrapolation.md).
test-extrapolation:
	$(PY) -m pytest -x -q -m extrapolation

# Full tier: everything, including the slow examples.
test-all:
	$(PY) -m pytest -q

# CI entry points: `ci` on every change, `ci-full` on main.  The fast path
# also smoke-runs the out-of-core kernels (equivalence gate at tiny n), the
# concurrent-selection scheduler (serial==scheduled equivalence plus a
# relaxed throughput gate at small n) and verifies the generated API
# reference is current.
ci: test-fast bench-smoke bench-concurrent-smoke bench-distrib-smoke \
    bench-cluster-smoke bench-extrapolation-smoke bench-fused-smoke \
    docs-api-check

ci-full: test-all docs-check

# Validate documentation: every fenced Python block in README/docs runs,
# every intra-doc link (and anchor) resolves, and docs/api matches a fresh
# render of the public docstrings.
docs-check:
	$(PY) -m pytest tests/docs -q

# Regenerate the markdown API reference under docs/api/ (commit the result).
docs-api:
	$(PY) tools/gen_api_docs.py

docs-api-check:
	$(PY) tools/gen_api_docs.py --check

bench-parallel:
	$(PY) benchmarks/bench_parallel_selection.py

bench-incremental:
	$(PY) benchmarks/bench_incremental_update.py --json-out benchmarks/bench_incremental_update.json

bench-similarity:
	$(PY) benchmarks/bench_similarity_scaling.py

# Out-of-core offline phase: full n=5000 budgeted build (minutes) and the
# seconds-long smoke tier CI runs on every change.
bench-ooc:
	$(PY) benchmarks/bench_ooc_scaling.py

bench-smoke:
	$(PY) benchmarks/bench_ooc_scaling.py --smoke

# Concurrent selection under the epoch scheduler: the full run gates >= 2x
# aggregate throughput at 8 overlapping requests (bitwise-identical
# results); the smoke tier runs the same equivalence gate at small n on
# every change.
bench-concurrent:
	$(PY) benchmarks/bench_concurrent_selection.py --json-out benchmarks/bench_concurrent_selection.json

bench-concurrent-smoke:
	$(PY) benchmarks/bench_concurrent_selection.py --smoke

# Crash-resume accounting: kill a selection mid-flight, resume it, and gate
# that journaled epochs are replayed (charged, never retrained) and that a
# raised budget pays only the delta.
bench-resume:
	$(PY) benchmarks/bench_resume.py --json-out benchmarks/bench_resume.json

# Routed serving tier: router overhead vs the single process (<= 1.25x on
# one CPU, bitwise-identical results), 2-worker scaling (gated only on
# multi-CPU hosts) and the saturation brownout probe (structured
# queue_full, bounded rejection latency).
bench-distrib:
	$(PY) benchmarks/bench_distributed_serving.py --json-out benchmarks/bench_distributed_serving.json

bench-distrib-smoke:
	$(PY) benchmarks/bench_distributed_serving.py --smoke

# Sub-quadratic clustering + ANN recall: the full run gates >= 5x over the
# quadratic scan at n=5000 (identical labels) and measures IVF recall@k;
# the smoke tier runs the same label-equivalence and recall-floor gates at
# tiny n on every change.
bench-cluster:
	$(PY) benchmarks/bench_cluster_scaling.py --json-out benchmarks/bench_cluster_scaling.json

bench-cluster-smoke:
	$(PY) benchmarks/bench_cluster_scaling.py --smoke

# Speculative early stopping: the full run gates >= 30% trained-epoch
# reduction on a 40-model zoo with the exact arm bitwise-identical to the
# sequential path and zero unaccounted regret; the smoke tier runs the
# same honesty gates (relaxed >= 10% reduction) at small n on every change.
bench-extrapolation:
	$(PY) benchmarks/bench_extrapolation.py --json-out benchmarks/bench_extrapolation.json

bench-extrapolation-smoke:
	$(PY) benchmarks/bench_extrapolation.py --smoke

# Fused multi-session training: the full run gates >= 3x round throughput
# at S=8 stacked sessions on one CPU with bitwise-identical curves,
# parameters and optimizer state; the smoke tier runs the same bitwise
# gates (relaxed throughput floor) at small n on every change.
bench-fused:
	$(PY) benchmarks/bench_fused_training.py --json-out benchmarks/bench_fused_training.json

bench-fused-smoke:
	$(PY) benchmarks/bench_fused_training.py --smoke

examples:
	$(PY) -m pytest tests/integration/test_examples.py -q
