# Convenience targets; everything is plain pytest/python underneath.

PY := PYTHONPATH=src python

.PHONY: test docs-check bench-parallel examples

test:
	$(PY) -m pytest -x -q

# Validate documentation: every fenced Python block in README/docs runs,
# every intra-doc link (and anchor) resolves.
docs-check:
	$(PY) -m pytest tests/docs -q

bench-parallel:
	$(PY) benchmarks/bench_parallel_selection.py

examples:
	$(PY) -m pytest tests/integration/test_examples.py -q
