# Convenience targets; everything is plain pytest/python underneath.

PY := PYTHONPATH=src python

.PHONY: test test-fast test-all ci ci-full docs-check bench-parallel bench-incremental examples

# Tier-1 verify: the full suite (what CI runs on main).
test:
	$(PY) -m pytest -x -q

# Fast tier: skips the randomized property suite, the golden experiment
# snapshots and slow integration runs — the loop for every-change CI.
test-fast:
	$(PY) -m pytest -x -q -m "not slow and not property and not golden"

# Full tier: everything, including the slow examples.
test-all:
	$(PY) -m pytest -q

# CI entry points: `ci` on every change, `ci-full` on main.
ci: test-fast

ci-full: test-all docs-check

# Validate documentation: every fenced Python block in README/docs runs,
# every intra-doc link (and anchor) resolves.
docs-check:
	$(PY) -m pytest tests/docs -q

bench-parallel:
	$(PY) benchmarks/bench_parallel_selection.py

bench-incremental:
	$(PY) benchmarks/bench_incremental_update.py

examples:
	$(PY) -m pytest tests/integration/test_examples.py -q
