"""Microbenchmark: vectorized vs. pairwise-loop Eq. 1 similarity matrix.

Times :func:`repro.core.similarity.performance_similarity_matrix` (the
vectorized engine, with caching disabled) against the reference O(n^2)
Python loop on synthetic performance matrices of n ∈ {50, 200, 800} models
over d = 40 benchmark datasets (the paper's NLP benchmark count), and a
third column showing the cache-hit cost of a repeated invocation.

Run with::

    PYTHONPATH=src python benchmarks/bench_similarity_scaling.py

The script verifies that both implementations agree to 1e-12 at every size
and exits non-zero if the vectorized path is less than 10x faster than the
loop at n = 800.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Tuple

import numpy as np

from repro.cache import ArtifactCache
from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    _performance_similarity_matrix_loop,
    performance_similarity_matrix,
)

SIZES = (50, 200, 800)
NUM_DATASETS = 40
TOP_K = 5
#: Minimum accepted speedup of the vectorized path at the largest size.
REQUIRED_SPEEDUP = 10.0


def _synthetic_matrix(num_models: int, num_datasets: int, seed: int) -> PerformanceMatrix:
    rng = np.random.default_rng(seed)
    return PerformanceMatrix(
        dataset_names=[f"bench-{i}" for i in range(num_datasets)],
        model_names=[f"model-{j}" for j in range(num_models)],
        values=rng.uniform(0.2, 0.95, size=(num_datasets, num_models)),
    )


def _best_of(repeats: int, fn: Callable[[], np.ndarray]) -> Tuple[float, np.ndarray]:
    """Best wall-clock time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(sizes=SIZES, *, num_datasets: int = NUM_DATASETS, top_k: int = TOP_K) -> List[dict]:
    """Time both implementations at every size; return one record per size."""
    records = []
    for n in sizes:
        matrix = _synthetic_matrix(n, num_datasets, seed=n)
        repeats = 3
        loop_time, loop_result = _best_of(
            repeats, lambda: _performance_similarity_matrix_loop(matrix, top_k=top_k)
        )
        fast_time, fast_result = _best_of(
            repeats,
            lambda: performance_similarity_matrix(matrix, top_k=top_k, cache=False),
        )
        max_abs_diff = float(np.abs(fast_result - loop_result).max())
        cache = ArtifactCache(max_entries=4)
        performance_similarity_matrix(matrix, top_k=top_k, cache=cache)  # warm
        hit_time, _ = _best_of(
            3, lambda: performance_similarity_matrix(matrix, top_k=top_k, cache=cache)
        )
        records.append(
            {
                "n": n,
                "loop_s": loop_time,
                "vectorized_s": fast_time,
                "cache_hit_s": hit_time,
                "speedup": loop_time / fast_time if fast_time else float("inf"),
                "max_abs_diff": max_abs_diff,
            }
        )
    return records


def render(records: List[dict]) -> str:
    """Fixed-width report table of the benchmark records."""
    lines = [
        f"Eq. 1 similarity matrix scaling (d={NUM_DATASETS}, top_k={TOP_K})",
        f"{'n':>5} {'loop [s]':>10} {'vectorized [s]':>15} "
        f"{'cache hit [s]':>14} {'speedup':>9} {'max|diff|':>10}",
    ]
    for r in records:
        lines.append(
            f"{r['n']:>5} {r['loop_s']:>10.4f} {r['vectorized_s']:>15.4f} "
            f"{r['cache_hit_s']:>14.6f} {r['speedup']:>8.1f}x {r['max_abs_diff']:>10.2e}"
        )
    return "\n".join(lines)


def main() -> int:
    records = run()
    print(render(records))
    failures = []
    for r in records:
        if r["max_abs_diff"] > 1e-12:
            failures.append(f"n={r['n']}: max|diff|={r['max_abs_diff']:.2e} > 1e-12")
    largest = records[-1]
    if largest["speedup"] < REQUIRED_SPEEDUP:
        failures.append(
            f"n={largest['n']}: speedup {largest['speedup']:.1f}x "
            f"< required {REQUIRED_SPEEDUP:.0f}x"
        )
    if failures:
        print("\nFAILED acceptance checks:\n  " + "\n  ".join(failures))
        return 1
    print(f"\nOK: agreement <= 1e-12 everywhere, "
          f">= {REQUIRED_SPEEDUP:.0f}x speedup at n={largest['n']}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
