"""Fig. 5 benchmark — coarse-recall vs random-recall quality.

Times one coarse-recall query (the online cost the figure is about) and
prints the average-accuracy-at-K comparison for every target dataset.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import fig5_recall_quality


def test_fig5_recall_quality(nlp_context, cv_context, benchmark):
    benchmark(lambda: nlp_context.selector.recall_only("mnli", top_k=10))

    all_records = []
    for context in (nlp_context, cv_context):
        records = fig5_recall_quality.run(context)
        all_records.extend(records)
        emit(f"Fig. 5 ({context.modality})", fig5_recall_quality.render(records))
        # Shape check: averaged over targets and K, coarse recall returns
        # better models than random recall.
        coarse = np.mean([r["coarse_recall_avg_acc"] for r in records])
        random = np.mean([r["random_recall_avg_acc"] for r in records])
        assert coarse > random
