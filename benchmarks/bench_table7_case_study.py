"""Table VII benchmark — case study of the finally selected models."""

from __future__ import annotations

from conftest import emit

from repro.experiments import table7_case_study


def test_table7_case_study(nlp_context, cv_context, benchmark):
    result = benchmark.pedantic(
        table7_case_study.run,
        args=(nlp_context,),
        kwargs={"targets": ("boolq",)},
        rounds=1,
        iterations=1,
    )
    assert result[0]["rank_at_recall"] is not None

    all_records = []
    for context in (nlp_context, cv_context):
        records = table7_case_study.run(context)
        all_records.extend(records)
        for record in records:
            # The selected model must come from the recalled set and beat the
            # average of the recalled models, as in the paper's case study.
            assert record["rank_at_recall"] is not None
            assert record["selected_accuracy"] >= record["avg_recalled_accuracy"] - 0.03
    emit("Table VII", table7_case_study.render(all_records))
