"""Table V benchmark — selection runtime (epochs) and speedups vs brute force."""

from __future__ import annotations

from conftest import emit

from repro.experiments import table5_runtime


def test_table5_runtime(nlp_context, cv_context, benchmark):
    result = benchmark.pedantic(
        table5_runtime.run,
        args=(nlp_context,),
        kwargs={"targets": ("mnli",), "include_full_repository": False},
        rounds=1,
        iterations=1,
    )
    assert {r["method"] for r in result} == {"BF", "SH", "FS"}

    all_records = []
    for context in (nlp_context, cv_context):
        records = table5_runtime.run(context)
        all_records.extend(records)
        # Shape check per (target, pool): FS <= SH <= BF in runtime.
        grouped = {}
        for record in records:
            grouped.setdefault((record["target"], record["pool"]), {})[record["method"]] = record
        for methods in grouped.values():
            assert methods["FS"]["runtime_epochs"] <= methods["SH"]["runtime_epochs"]
            assert methods["SH"]["runtime_epochs"] <= methods["BF"]["runtime_epochs"]
            assert methods["FS"]["speedup_vs_bf"] >= 2.0
    emit("Table V", table5_runtime.render(all_records))
