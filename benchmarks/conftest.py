"""Shared fixtures for the benchmark harness.

The offline artifacts (model hub, performance matrix, clustering, target
ground truth) are built once per session and shared by every benchmark so
that each ``bench_*`` file only times the online computation it reproduces.

Scale is controlled by ``REPRO_EXPERIMENT_SCALE`` (``full`` by default,
``small`` for a quick pass).
"""

from __future__ import annotations

import pytest

from repro.experiments.context import get_context


@pytest.fixture(scope="session")
def nlp_context():
    """Experiment context for the 40-model NLP repository."""
    context = get_context("nlp")
    # Force the expensive artifacts up front so they are excluded from timings.
    context.matrix
    context.clustering
    return context


@pytest.fixture(scope="session")
def cv_context():
    """Experiment context for the 30-model CV repository."""
    context = get_context("cv")
    context.matrix
    context.clustering
    return context


@pytest.fixture(scope="session")
def contexts(nlp_context, cv_context):
    """Both modality contexts keyed by modality name."""
    return {"nlp": nlp_context, "cv": cv_context}


def emit(title: str, text: str) -> None:
    """Print a rendered experiment block (visible with ``pytest -s``)."""
    print(f"\n{'=' * 80}\n{title}\n{'=' * 80}\n{text}\n")
