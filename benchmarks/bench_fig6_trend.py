"""Fig. 6 benchmark — convergence-trend clustering quality."""

from __future__ import annotations

from conftest import emit

from repro.experiments import fig6_trend_quality


def test_fig6_trend_quality(nlp_context, cv_context, benchmark):
    # Time the per-model unit of work: mining + leave-one-out evaluation for
    # a single checkpoint.
    one_model = [nlp_context.hub.model_names[0]]
    benchmark(
        lambda: fig6_trend_quality.run(nlp_context, model_names=one_model)
    )

    for context in (nlp_context, cv_context):
        records = fig6_trend_quality.run(context)
        summary = fig6_trend_quality.summarize(records)
        emit(f"Fig. 6 ({context.modality})", fig6_trend_quality.render(records))
        # Shape checks from the paper: validation-based clustering beats
        # random clustering, and trend-based prediction beats the global mean.
        assert summary["mean_validation_silhouette"] > summary["mean_random_silhouette"]
        assert summary["mean_trend_prediction_error"] <= summary["mean_global_mean_error"] * 1.05
