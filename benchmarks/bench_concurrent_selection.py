"""Benchmark: concurrent selection throughput under the epoch scheduler.

Measures what the scheduler overhaul buys a service under load: 8
concurrent selection requests over a task mix with overlapping candidate
clusters are submitted to one :class:`~repro.sched.scheduler.EpochScheduler`
and compared against submitting the same mix *sequentially* through the
blocking :class:`~repro.core.pipeline.TwoPhaseSelector` path (one request
at a time, private sessions, exactly the pre-scheduler deployment).

The win is **session reuse**, not parallelism: overlapping requests share
partially-trained ``(model, task)`` checkpoints through the
:class:`~repro.sched.pool.SessionPool`, so the aggregate epochs actually
trained drop well below the epochs charged — which is why the gate holds
even on a single-CPU host.  The script verifies every concurrent result is
**bitwise-identical** to its sequential counterpart, reports aggregate
throughput (requests/s) plus p50/p95 request latency under load, and exits
non-zero if concurrent throughput is below the required multiple of
sequential throughput.

Run with::

    PYTHONPATH=src python benchmarks/bench_concurrent_selection.py
    PYTHONPATH=src python benchmarks/bench_concurrent_selection.py --smoke
    PYTHONPATH=src python benchmarks/bench_concurrent_selection.py \
        --json-out benchmarks/bench_concurrent_selection.json

``--smoke`` runs a reduced configuration (small data scale, truncated hub)
with a relaxed gate — the tier `make ci` runs on every change; the full
configuration records the numbers quoted in ``docs/benchmarks.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Tuple

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.config import PipelineConfig
from repro.core.results import TwoPhaseResult
from repro.data.workloads import DataScale, suite_for_modality
from repro.sched import EpochScheduler, SchedulerConfig
from repro.zoo.hub import ModelHub

#: Required concurrent/sequential throughput multiple (full run).
REQUIRED_SPEEDUP = 2.0
#: Relaxed gate of the CI smoke tier: at the small data scale an epoch is
#: so cheap that fixed per-request overheads (proxy scoring, round
#: bookkeeping) dominate, so smoke primarily gates serial==scheduled
#: equivalence and only sanity-checks that reuse still wins wall-clock.
SMOKE_SPEEDUP = 1.2
#: Number of concurrent requests (the acceptance criterion's load point).
NUM_REQUESTS = 8


def build_benchmark(*, smoke: bool, seed: int) -> Tuple[OfflineArtifacts, List[str]]:
    """Artifacts plus the 8-request task mix.

    The mix cycles over a handful of distinct targets, so concurrent
    requests overlap heavily in their recalled candidate clusters — the
    service-under-load shape (many users asking about the same hot tasks)
    that session reuse is designed for.
    """
    from dataclasses import replace

    scale = DataScale.small() if smoke else DataScale.default()
    suite = suite_for_modality("nlp", seed=seed, scale=scale)
    hub = ModelHub(suite, seed=seed)
    if smoke:
        hub = hub.subset(hub.model_names[:10])
    config = PipelineConfig.for_modality("nlp")
    # Proxy scores are memoised for both paths (sequential and scheduled
    # alike, each starting from a cold cache) so the comparison isolates
    # the training cost — the resource the scheduler actually multiplexes.
    # Cached and fresh proxy scores are interchangeable by construction
    # (deterministic content-key seeding), which the identical-results
    # gate below re-verifies end to end.
    config = replace(config, recall=replace(config.recall, cache_proxy_scores=True))
    artifacts = OfflineArtifacts.build(hub, suite, config=config)
    distinct = (list(suite.target_names) or list(suite.dataset_names))[:2]
    mix = [distinct[i % len(distinct)] for i in range(NUM_REQUESTS)]
    return artifacts, mix


def run_sequential(
    artifacts: OfflineArtifacts, mix: List[str], *, seed: int
) -> Tuple[float, List[TwoPhaseResult], List[float]]:
    """The baseline: one blocking request at a time, private sessions."""
    selector = TwoPhaseSelector(artifacts, seed=seed)
    results: List[TwoPhaseResult] = []
    latencies: List[float] = []
    started = time.perf_counter()
    for target in mix:
        t0 = time.perf_counter()
        results.append(selector.select(target))
        latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - started, results, latencies


def run_concurrent(
    artifacts: OfflineArtifacts, mix: List[str], *, seed: int
) -> Tuple[
    float, List[TwoPhaseResult], List[float], Dict[str, int], Dict[str, object]
]:
    """The scheduled path: all requests in flight at once, shared sessions."""
    from repro.zoo.finetune import FineTuner

    scheduler = EpochScheduler.for_artifacts(
        artifacts,
        fine_tuner=FineTuner(seed=seed),
        config=SchedulerConfig(
            max_concurrent=NUM_REQUESTS,
            max_queue=NUM_REQUESTS,
            epoch_budget=NUM_REQUESTS,
        ),
    )
    started = time.perf_counter()
    handles = [scheduler.submit(target) for target in mix]
    scheduler.run_until_idle()
    elapsed = time.perf_counter() - started
    results = [scheduler.result(handle) for handle in handles]
    latencies = [handle.latency_seconds() for handle in handles]
    stats = scheduler.stats()
    return elapsed, results, latencies, scheduler.pool.stats(), stats["train"]


def results_identical(a: TwoPhaseResult, b: TwoPhaseResult) -> bool:
    """Bitwise equality of everything a TwoPhaseResult records."""
    return (
        a.selected_model == b.selected_model
        and a.selected_accuracy == b.selected_accuracy
        and a.selection.stages == b.selection.stages
        and a.selection.final_accuracies == b.selection.final_accuracies
        and a.recall.recall_scores == b.recall.recall_scores
        and a.total_cost == b.total_cost
    )


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a latency sample."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration with a relaxed gate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the measured record as JSON")
    args = parser.parse_args(argv)

    print(f"[offline] building artifacts ({'smoke' if args.smoke else 'full'}) ...")
    artifacts, mix = build_benchmark(smoke=args.smoke, seed=args.seed)
    print(f"[bench] {NUM_REQUESTS} requests over targets {sorted(set(mix))} "
          f"({len(artifacts.hub)} models)")

    from repro.cache import clear_cache

    clear_cache()  # both paths start from a cold proxy-score cache
    seq_time, seq_results, seq_latencies = run_sequential(
        artifacts, mix, seed=args.seed
    )
    clear_cache()
    conc_time, conc_results, conc_latencies, pool, train = run_concurrent(
        artifacts, mix, seed=args.seed
    )

    identical = all(
        results_identical(a, b) for a, b in zip(seq_results, conc_results)
    )
    speedup = seq_time / conc_time if conc_time > 0 else float("inf")
    required = SMOKE_SPEEDUP if args.smoke else REQUIRED_SPEEDUP
    record = {
        "mode": "smoke" if args.smoke else "full",
        "num_requests": NUM_REQUESTS,
        "targets": mix,
        "num_models": len(artifacts.hub),
        "sequential_seconds": seq_time,
        "concurrent_seconds": conc_time,
        "throughput_multiple": speedup,
        "required_multiple": required,
        "sequential_rps": NUM_REQUESTS / seq_time,
        "concurrent_rps": NUM_REQUESTS / conc_time,
        "latency_p50_seconds": percentile(conc_latencies, 0.50),
        "latency_p95_seconds": percentile(conc_latencies, 0.95),
        "sequential_latency_p50_seconds": percentile(seq_latencies, 0.50),
        "sequential_latency_p95_seconds": percentile(seq_latencies, 0.95),
        "identical_results": identical,
        "session_pool": pool,
        "train": train,
    }

    print(f"  sequential : {seq_time:8.2f}s  "
          f"({record['sequential_rps']:.2f} req/s)")
    print(f"  concurrent : {conc_time:8.2f}s  "
          f"({record['concurrent_rps']:.2f} req/s, {speedup:.2f}x)")
    print(f"  latency    : p50 {record['latency_p50_seconds']:.2f}s  "
          f"p95 {record['latency_p95_seconds']:.2f}s under load "
          f"(sequential p50 {record['sequential_latency_p50_seconds']:.2f}s)")
    print(f"  sessions   : {pool['epochs_trained']} epochs trained, "
          f"{pool['epochs_reused']} reused "
          f"({pool['hits']} pool hits / {pool['misses']} misses)")
    print(f"  fused      : {train['fused_groups']} groups, "
          f"{train['fused_epochs']} fused / {train['serial_epochs']} serial "
          f"epochs, {train['delegated_groups']} delegated")
    print(f"  identical results: {identical}")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"  wrote {args.json_out}")

    if not identical:
        print("FAIL: concurrent results diverge from the sequential path",
              file=sys.stderr)
        return 1
    if speedup < required:
        print(f"FAIL: concurrent throughput {speedup:.2f}x is below the "
              f"required {required:.1f}x", file=sys.stderr)
        return 1
    print(f"PASS: >= {required:.1f}x concurrent throughput with identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
