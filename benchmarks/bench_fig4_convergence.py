"""Fig. 4 benchmark — convergence-trend grouping of one model's benchmark curves."""

from __future__ import annotations

from conftest import emit

from repro.experiments import fig4_convergence_groups


def test_fig4_convergence_groups(nlp_context, cv_context, benchmark):
    result = benchmark(fig4_convergence_groups.run, nlp_context)
    assert 1 <= result["num_trends"] <= 4

    for context in (nlp_context, cv_context):
        block = fig4_convergence_groups.run(context)
        emit(f"Fig. 4 ({context.modality})", fig4_convergence_groups.render(block))
        trends = block["trends"]
        # Trends are ordered by validation accuracy; their mean final test
        # accuracy should broadly follow the same ordering.
        assert trends == sorted(trends, key=lambda t: t["mean_val"])
