"""Benchmark: full similarity recompute vs incremental zoo update.

Simulates repository growth at realistic hub scales: starting from an
``n``-model repository whose Eq. 1 similarity matrix is already warm, add
``n_add`` models and compare

* the from-scratch oracle — :func:`performance_similarity_matrix` over the
  whole ``(n + n_add)``-model repository, and
* the incremental path — :func:`update_similarity_matrix`, which recomputes
  only the ``added x all`` blocks.

Every incremental result is asserted **bitwise-equal** to the oracle before
any timing is reported, so the benchmark doubles as an equivalence check at
scales the unit tests never reach.

Run with::

    PYTHONPATH=src python benchmarks/bench_incremental_update.py [--quick]

The script exits non-zero if any incremental result diverges from the
oracle, or if the single-model add is less than 5x faster than the full
recompute (the PR's acceptance bar; ``--quick`` skips the timing gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List

import numpy as np

from repro.core.performance import PerformanceMatrix
from repro.core.similarity import (
    performance_similarity_matrix,
    update_similarity_matrix,
)

#: Repository sizes and add-batch sizes exercised (paper hubs are n <= 40;
#: these are the production-scale shapes the ROADMAP targets).
BASE_SIZES = (200, 800)
ADD_SIZES = (1, 5, 20)
NUM_DATASETS = 40
TOP_K = 5
#: Minimum accepted speedup of a single-model incremental add.
REQUIRED_SPEEDUP = 5.0


def _random_matrix(rng: np.random.Generator, n: int) -> PerformanceMatrix:
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(NUM_DATASETS)],
        model_names=[f"m{j}" for j in range(n)],
        values=rng.uniform(0.1, 0.95, size=(NUM_DATASETS, n)),
    )


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run(base_sizes=BASE_SIZES, add_sizes=ADD_SIZES, repeats: int = 3) -> List[dict]:
    rng = np.random.default_rng(0)
    records: List[dict] = []
    for n in base_sizes:
        grown = _random_matrix(rng, n + max(add_sizes))
        for n_add in add_sizes:
            old = PerformanceMatrix(
                dataset_names=grown.dataset_names,
                model_names=grown.model_names[:n],
                values=grown.values[:, :n],
            )
            new = PerformanceMatrix(
                dataset_names=grown.dataset_names,
                model_names=grown.model_names[: n + n_add],
                values=grown.values[:, : n + n_add],
            )
            old_similarity = performance_similarity_matrix(old, top_k=TOP_K, cache=False)

            incremental = update_similarity_matrix(
                old, old_similarity, new, top_k=TOP_K, cache=False
            )
            oracle = performance_similarity_matrix(new, top_k=TOP_K, cache=False)
            identical = bool(np.array_equal(incremental, oracle))

            full_time = _best_of(
                repeats,
                lambda new=new: performance_similarity_matrix(
                    new, top_k=TOP_K, cache=False
                ),
            )
            incremental_time = _best_of(
                repeats,
                lambda old=old, sim=old_similarity, new=new: update_similarity_matrix(
                    old, sim, new, top_k=TOP_K, cache=False
                ),
            )
            records.append(
                {
                    "n": n,
                    "n_add": n_add,
                    "full_seconds": full_time,
                    "incremental_seconds": incremental_time,
                    "speedup": full_time / incremental_time
                    if incremental_time > 0
                    else float("inf"),
                    "identical": identical,
                }
            )
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single repeat, no timing gate (smoke check)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="also write the timing records as JSON (CI uploads these)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else 3

    records = run(repeats=repeats)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                {"d": NUM_DATASETS, "top_k": TOP_K, "records": records},
                handle,
                indent=2,
            )
    print(f"incremental zoo update vs full recompute (d={NUM_DATASETS}, top_k={TOP_K})")
    print(f"{'n':>5} {'add':>4} {'full':>10} {'incremental':>12} {'speedup':>8}  equal")
    for record in records:
        print(
            f"{record['n']:>5} {record['n_add']:>4} "
            f"{record['full_seconds'] * 1e3:>8.1f}ms "
            f"{record['incremental_seconds'] * 1e3:>10.2f}ms "
            f"{record['speedup']:>7.1f}x  {record['identical']}"
        )

    failed = False
    if not all(record["identical"] for record in records):
        print("FAIL: an incremental result diverged from the full recompute")
        failed = True
    if not args.quick:
        for record in records:
            if record["n_add"] == 1 and record["speedup"] < REQUIRED_SPEEDUP:
                print(
                    f"FAIL: single-model add at n={record['n']} is only "
                    f"{record['speedup']:.1f}x faster (need >= {REQUIRED_SPEEDUP}x)"
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
