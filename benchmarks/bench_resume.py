"""Benchmark: crash-resume epoch accounting under the persisted plan store.

Measures what the persistence tier buys a crashed server: a selection
request killed mid-flight is resumed from its plan journal and session
snapshots, so the epochs already paid for are *replayed* (charged to the
request's accounting, served from snapshots) instead of trained a second
time.  The script runs three phases against one on-disk
:class:`~repro.persist.store.PlanStore` and gates their accounting:

1. **Crash + resume** — kill at the middle step boundary, restart, resume.
   Gate: the resumed result is bitwise-identical to a never-crashed run,
   every journaled epoch is replayed, and replayed epochs are never
   retrained (`epochs_reused >= epochs_replayed`).
2. **Result fast path** — resubmit the finished request from a third
   process lifetime.  Gate: zero epochs trained.
3. **Budget raise** — resubmit with a doubled epoch budget.  Gate: actual
   training is bounded by the budget delta (old rungs replay for free).

Run with::

    PYTHONPATH=src python benchmarks/bench_resume.py
    PYTHONPATH=src python benchmarks/bench_resume.py --smoke
    PYTHONPATH=src python benchmarks/bench_resume.py \
        --json-out benchmarks/bench_resume.json

``--smoke`` truncates the hub further for the fastest possible CI signal;
both configurations gate the same invariants (they are exact accounting
identities, not throughput thresholds, so no relaxation is needed).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time
from typing import Dict

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.data.workloads import DataScale, suite_for_modality
from repro.persist import PlanStore, SimulatedCrash, install_hook, remove_hook
from repro.sched import EpochScheduler
from repro.zoo.hub import ModelHub

TARGET, TOP_K = "mnli", 5


def build_artifacts(*, smoke: bool, seed: int) -> OfflineArtifacts:
    suite = suite_for_modality("nlp", seed=seed, scale=DataScale.small())
    hub = ModelHub(suite, seed=seed)
    hub = hub.subset(hub.model_names[: 8 if smoke else 16])
    return OfflineArtifacts.build(hub, suite)


def results_equal(a, b) -> bool:
    return (
        a.selected_model == b.selected_model
        and a.selection.stages == b.selection.stages
        and a.selection.final_accuracies == b.selection.final_accuracies
        and a.recall.recall_scores == b.recall.recall_scores
        and a.total_cost == b.total_cost
    )


def crash_at_step(scheduler: EpochScheduler, ordinal: int) -> None:
    hits = {"n": 0}

    def _hook(site, _info):
        hits["n"] += 1
        if hits["n"] == ordinal:
            raise SimulatedCrash(f"{site}#{ordinal}")

    install_hook("plan.step", _hook)
    try:
        scheduler.run_until_idle()
        raise RuntimeError("expected the armed crash point to fire")
    except SimulatedCrash:
        pass
    finally:
        remove_hook("plan.step")


def run(*, smoke: bool, seed: int) -> Dict[str, object]:
    artifacts = build_artifacts(smoke=smoke, seed=seed)
    oracle = TwoPhaseSelector(artifacts).select(TARGET, top_k=TOP_K)
    store_dir = tempfile.mkdtemp(prefix="bench-resume-")
    record: Dict[str, object] = {
        "config": "smoke" if smoke else "full",
        "num_models": len(artifacts.hub),
        "target": TARGET,
        "top_k": TOP_K,
        "gates": {},
    }

    # Phase 1: crash at the middle step boundary, then resume.
    s1 = EpochScheduler.for_artifacts(artifacts, persist=PlanStore(store_dir))
    s1.submit(TARGET, top_k=TOP_K)
    total_steps = int(oracle.selection.runtime_epochs)
    crash_at_step(s1, max(2, total_steps // 2))

    started = time.perf_counter()
    s2 = EpochScheduler.for_artifacts(artifacts, persist=PlanStore(store_dir))
    recovered = s2.recover()
    s2.run_until_idle()
    resumed = s2.result(recovered[0], timeout=30)
    resume_seconds = time.perf_counter() - started
    stats = s2.stats()
    replayed = stats["persist"]["epochs_replayed"]
    pool = stats["session_pool"]
    record["resume"] = {
        "seconds": resume_seconds,
        "epochs_charged": resumed.selection.runtime_epochs,
        "epochs_replayed": replayed,
        "epochs_trained": pool["epochs_trained"],
        "epochs_reused": pool["epochs_reused"],
        "sessions_restored": pool["restored"],
    }
    record["gates"]["resume_bitwise_identical"] = results_equal(resumed, oracle)
    record["gates"]["journaled_epochs_replayed"] = replayed >= 1
    record["gates"]["replayed_epochs_not_retrained"] = (
        pool["epochs_reused"] >= replayed
        and pool["epochs_trained"] + pool["epochs_reused"]
        == resumed.selection.runtime_epochs
    )

    # Phase 2: a finished request served purely from its journaled result.
    s3 = EpochScheduler.for_artifacts(artifacts, persist=PlanStore(store_dir))
    r3 = s3.submit(TARGET, top_k=TOP_K)
    s3.run_until_idle()
    fast = s3.result(r3, timeout=30)
    fast_pool = s3.stats()["session_pool"]
    record["fast_path"] = {
        "results_restored": s3.stats()["persist"]["results_restored"],
        "epochs_trained": fast_pool["epochs_trained"],
    }
    record["gates"]["result_fast_path_trains_nothing"] = (
        results_equal(fast, oracle) and fast_pool["epochs_trained"] == 0
    )

    # Phase 3: raise the budget; only the delta may be trained.
    base_budget = artifacts.config.fine_selection.total_epochs
    raised_budget = base_budget * 2
    raised_artifacts = dataclasses.replace(
        artifacts,
        config=dataclasses.replace(
            artifacts.config,
            fine_selection=dataclasses.replace(
                artifacts.config.fine_selection, total_epochs=raised_budget
            ),
        ),
    )
    raised_oracle = TwoPhaseSelector(raised_artifacts).select(TARGET, top_k=TOP_K)
    s4 = EpochScheduler.for_artifacts(artifacts, persist=PlanStore(store_dir))
    r4 = s4.submit(TARGET, top_k=TOP_K, total_epochs=raised_budget)
    s4.run_until_idle()
    raised = s4.result(r4, timeout=30)
    raised_pool = s4.stats()["session_pool"]
    delta = raised.selection.runtime_epochs - oracle.selection.runtime_epochs
    record["budget_raise"] = {
        "base_budget": base_budget,
        "raised_budget": raised_budget,
        "epochs_charged": raised.selection.runtime_epochs,
        "epochs_replayed": s4.stats()["persist"]["epochs_replayed"],
        "epochs_trained": raised_pool["epochs_trained"],
        "budget_delta": delta,
    }
    record["gates"]["raise_matches_serial_at_raised_budget"] = results_equal(
        raised, raised_oracle
    )
    record["gates"]["raise_trains_at_most_the_delta"] = (
        raised_pool["epochs_trained"] <= delta
    )
    record["passed"] = all(record["gates"].values())
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced hub for the fastest CI signal")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="write the JSON record to PATH")
    args = parser.parse_args(argv)

    record = run(smoke=args.smoke, seed=args.seed)
    print(json.dumps(record, indent=2))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    if not record["passed"]:
        failed = [name for name, ok in record["gates"].items() if not ok]
        print(f"FAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
