"""Ablation benchmark — proxy-score choice in the coarse-recall phase.

Not a paper table; this covers the design choice DESIGN.md calls out (LEEP vs
NCE vs LogME vs H-score vs kNN vs prior-only ranking).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import ablation_proxy


def test_ablation_proxy_choice(nlp_context, cv_context, benchmark):
    result = benchmark.pedantic(
        ablation_proxy.run,
        args=(nlp_context,),
        kwargs={"targets": ("mnli",), "proxies": ("leep",), "top_k": 10},
        rounds=1,
        iterations=1,
    )
    assert result[0]["proxy"] == "leep"

    all_records = []
    for context in (nlp_context, cv_context):
        records = ablation_proxy.run(context, top_k=10)
        all_records.extend(records)
        summary = ablation_proxy.summarize(records)
        # Every proxy arm (and the prior-only arm) must recall a candidate set
        # whose average accuracy beats the repository average.
        repository_avg = np.mean(
            [
                curve.final_test
                for curves in context.target_ground_truth().values()
                for curve in curves.values()
            ]
        )
        for stats in summary.values():
            assert stats["avg_recalled_acc"] > repository_avg
    emit("Ablation: proxy-score choice", ablation_proxy.render(all_records))
