"""Benchmark: sub-quadratic offline clustering (nnchain) + ANN recall.

Demonstrates the PR-8 claim end-to-end: the nearest-neighbor-chain
agglomeration engine (``repro.cluster.nnchain``) produces labels
identical to the quadratic-scan oracle while cutting the ``n = 5000``
clustering step from minutes to ~1 second, and the IVF index
(``repro.ann``) answers nearest-model queries with measured recall@k
against the exact scan (and is bitwise-exact when every list is probed).

Three tiers:

* full (default): the equivalence gate (scan vs nnchain, bitwise labels
  at ``n = 600``), the timed ``n = 5000`` head-to-head with a hard
  ``>= 5x`` speedup gate, and the ANN recall sweep at ``n = 5000``.
  Expect a couple of minutes — the quadratic scan *is* the cost being
  measured.
* ``--smoke``: the same gates at tiny sizes (equivalence at ``n = 200``,
  a relaxed ``>= 2x`` timing sanity check at ``n = 800``, ANN recall
  floor + exactness at ``n = 400``), seconds in total — this is what
  ``make bench-cluster-smoke`` runs in CI on every change.
* ``--xl``: additionally times an nnchain-only build at ``n = 20000``
  (the scan would take hours there; nnchain finishes in well under a
  minute).

Run with::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py [--smoke|--xl]

Exits non-zero if nnchain labels diverge from the scan oracle, the
speedup gate fails, full-probe ANN search is not exactly the exact scan,
or recall at the default probe count falls below the floor.  Records are
written as JSON (``--json-out``, default
``benchmarks/bench_cluster_scaling.json``) for the CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.ann import IVFIndex, exact_search, recall_at_k
from repro.cluster.distance import pairwise_distances
from repro.cluster.hierarchical import AgglomerativeClustering
from repro.cluster.nnchain import NNChainClustering

NUM_DATASETS = 40
NUM_CLUSTERS = 25
#: Full-tier speedup gate: nnchain must beat the scan by at least this
#: factor at ``n = 5000`` (measured ~60x in practice).
FULL_SPEEDUP_GATE = 5.0
#: Smoke-tier sanity gate at small n, where constant factors dominate.
SMOKE_SPEEDUP_GATE = 2.0
#: Recall floor at the default probe count (nlist // 4).  Measured
#: recall on Gaussian model vectors is >= 0.9; the floor is deliberately
#: loose so CI does not flake on k-means initialization.
RECALL_FLOOR = 0.5
RECALL_K = 10
NUM_RECALL_QUERIES = 50


def _distances(rng: np.random.Generator, n: int) -> np.ndarray:
    """Continuous Gaussian model vectors — generically tie-free, so the
    chain never needs to delegate to the scan (the regime Eq. 1
    similarities live in)."""
    return pairwise_distances(rng.normal(size=(n, NUM_DATASETS)))


def run_equivalence(n: int) -> dict:
    """Scan vs nnchain at ``n`` — labels and merge slots must match."""
    distances = _distances(np.random.default_rng(7), n)
    checks = {}
    for num_clusters in (1, NUM_CLUSTERS, n // 3):
        scan = AgglomerativeClustering(num_clusters=num_clusters)
        chain = NNChainClustering(num_clusters=num_clusters)
        labels_equal = bool(
            np.array_equal(
                scan.fit_predict(distances), chain.fit_predict(distances)
            )
        )
        slots_equal = [m[:2] for m in scan.merge_history_] == [
            m[:2] for m in chain.merge_history_
        ]
        checks[f"k={num_clusters}"] = labels_equal and slots_equal
    return {"n": n, "checks": checks, "identical": all(checks.values())}


def run_speedup(n: int, *, gate: float) -> dict:
    """Timed head-to-head at ``n`` with a hard speedup gate."""
    distances = _distances(np.random.default_rng(0), n)
    started = time.perf_counter()
    scan_labels = AgglomerativeClustering(num_clusters=NUM_CLUSTERS).fit_predict(
        distances
    )
    scan_seconds = time.perf_counter() - started
    started = time.perf_counter()
    chain_labels = NNChainClustering(num_clusters=NUM_CLUSTERS).fit_predict(
        distances
    )
    chain_seconds = time.perf_counter() - started
    speedup = scan_seconds / chain_seconds if chain_seconds else float("inf")
    return {
        "n": n,
        "num_clusters": NUM_CLUSTERS,
        "scan_seconds": scan_seconds,
        "nnchain_seconds": chain_seconds,
        "speedup": speedup,
        "speedup_gate": gate,
        "labels_identical": bool(np.array_equal(scan_labels, chain_labels)),
        "gate_passed": speedup >= gate,
    }


def run_xl_build(n: int) -> dict:
    """nnchain-only timing at a size where the scan is impractical."""
    distances = _distances(np.random.default_rng(1), n)
    started = time.perf_counter()
    labels = NNChainClustering(num_clusters=NUM_CLUSTERS).fit_predict(distances)
    elapsed = time.perf_counter() - started
    return {
        "n": n,
        "nnchain_seconds": elapsed,
        "num_clusters": int(np.unique(labels).size),
    }


def run_ann_recall(n: int) -> dict:
    """IVF recall@k vs the exact scan, plus the full-probe exactness gate."""
    rng = np.random.default_rng(3)
    vectors = rng.normal(size=(n, NUM_DATASETS))
    queries = vectors[:NUM_RECALL_QUERIES] + 0.1 * rng.normal(
        size=(min(NUM_RECALL_QUERIES, n), NUM_DATASETS)
    )
    started = time.perf_counter()
    index = IVFIndex(vectors, seed=0)
    build_seconds = time.perf_counter() - started

    exact_exactness = True
    started = time.perf_counter()
    for query in queries:
        ids, distances = index.search(query, RECALL_K, nprobe=index.nlist)
        exact_ids, exact_d = exact_search(vectors, query, RECALL_K)
        exact_exactness &= bool(np.array_equal(ids, exact_ids))
        exact_exactness &= bool(np.array_equal(distances, exact_d))
    full_probe_seconds = time.perf_counter() - started

    sweep = {}
    for nprobe in sorted({1, max(1, index.nlist // 8), index.nprobe, index.nlist}):
        started = time.perf_counter()
        value = recall_at_k(index, queries, RECALL_K, nprobe=nprobe)
        elapsed = time.perf_counter() - started
        sweep[str(nprobe)] = {
            "recall": value,
            "seconds_per_query": elapsed / len(queries),
        }

    started = time.perf_counter()
    for query in queries:
        exact_search(vectors, query, RECALL_K)
    exact_seconds = time.perf_counter() - started

    default_recall = sweep[str(index.nprobe)]["recall"]
    return {
        "n": n,
        "d": NUM_DATASETS,
        "k": RECALL_K,
        "nlist": index.nlist,
        "default_nprobe": index.nprobe,
        "build_seconds": build_seconds,
        "recall_by_nprobe": sweep,
        "exact_seconds_per_query": exact_seconds / len(queries),
        "full_probe_seconds_per_query": full_probe_seconds / len(queries),
        "default_recall": default_recall,
        "recall_floor": RECALL_FLOOR,
        "full_probe_exact": exact_exactness,
        "gate_passed": exact_exactness and default_recall >= RECALL_FLOOR,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, equivalence + recall gates only (the CI tier)",
    )
    parser.add_argument(
        "--xl",
        action="store_true",
        help="additionally time an nnchain-only build at n=20000",
    )
    parser.add_argument("--n", type=int, default=5000, help="head-to-head size")
    parser.add_argument(
        "--xl-n", type=int, default=20000, help="nnchain-only build size"
    )
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).parent / "bench_cluster_scaling.json"),
        metavar="FILE",
        help="write the records as JSON (CI uploads these)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        equivalence_n, timed_n, ann_n, gate = 200, 800, 400, SMOKE_SPEEDUP_GATE
    else:
        equivalence_n, timed_n, ann_n, gate = 600, args.n, args.n, FULL_SPEEDUP_GATE

    print(f"[1/3] equivalence: scan vs nnchain labels at n={equivalence_n} ...")
    equivalence = run_equivalence(equivalence_n)
    for name, passed in equivalence["checks"].items():
        print(f"      {name:<12} {'ok' if passed else 'MISMATCH'}")

    print(f"[2/3] timed head-to-head at n={timed_n} (gate >= {gate:.0f}x) ...")
    speedup = run_speedup(timed_n, gate=gate)
    print(
        f"      scan {speedup['scan_seconds']:.2f}s, "
        f"nnchain {speedup['nnchain_seconds']:.2f}s "
        f"-> {speedup['speedup']:.1f}x "
        f"(labels {'identical' if speedup['labels_identical'] else 'DIVERGED'})"
    )

    print(f"[3/3] ANN recall@{RECALL_K} at n={ann_n} ...")
    ann = run_ann_recall(ann_n)
    for nprobe, record in ann["recall_by_nprobe"].items():
        print(
            f"      nprobe={nprobe:<4} recall {record['recall']:.3f}  "
            f"{record['seconds_per_query'] * 1e3:.2f} ms/query"
        )
    print(
        f"      exact scan {ann['exact_seconds_per_query'] * 1e3:.2f} ms/query; "
        f"full probing {'bitwise-exact' if ann['full_probe_exact'] else 'DIVERGED'}"
    )

    payload = {"equivalence": equivalence, "speedup": speedup, "ann": ann}
    if args.xl:
        print(f"[xl ] nnchain-only build at n={args.xl_n} ...")
        xl = run_xl_build(args.xl_n)
        print(
            f"      {xl['n']} models clustered in {xl['nnchain_seconds']:.1f}s "
            f"({xl['num_clusters']} clusters)"
        )
        payload["xl"] = xl

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"      records written to {args.json_out}")

    failed = False
    if not equivalence["identical"]:
        print("FAIL: nnchain labels diverged from the scan oracle")
        failed = True
    if not speedup["labels_identical"]:
        print("FAIL: timed head-to-head produced diverging labels")
        failed = True
    if not speedup["gate_passed"]:
        print(
            f"FAIL: speedup {speedup['speedup']:.1f}x below the "
            f"{gate:.0f}x gate"
        )
        failed = True
    if not ann["full_probe_exact"]:
        print("FAIL: full-probe ANN search diverged from the exact scan")
        failed = True
    if ann["default_recall"] < RECALL_FLOOR:
        print(
            f"FAIL: recall@{RECALL_K} {ann['default_recall']:.3f} below the "
            f"{RECALL_FLOOR} floor at the default probe count"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
