"""Benchmark: fused (stacked-kernel) multi-session training throughput.

Measures what :mod:`repro.nn.batched` buys the scheduler's round hot path
on a single CPU: ``S`` same-task fine-tuning sessions advanced one epoch
at a time, serially (one ``fit_epoch`` loop per session — the
pre-fusion round executor) versus fused (one stacked ``(S, b, d)``
mini-batch loop).  Three layers, strictly gated:

1. **Bitwise gate** — the fused run must reproduce the serial curves,
   training histories and final parameters exactly (any mismatch fails
   the benchmark before any throughput number is looked at).
2. **Round throughput** — median speedup of the fused round over the
   serial round at ``S = 8`` must meet the gate (3x full, relaxed on
   ``--smoke`` where epochs are too cheap for kernel fusion to matter
   against fixed python overhead).
3. **Single-pass eval micro-gate** — the concatenated ``[val; test]``
   forward of ``FineTuneSession.evaluate`` must equal the two separate
   ``score`` passes bitwise (and is timed for the record).

A scheduler-level pass (fused on vs off over identical request mixes)
records end-to-end round counters and re-verifies result equality.

Run with::

    PYTHONPATH=src python benchmarks/bench_fused_training.py
    PYTHONPATH=src python benchmarks/bench_fused_training.py --smoke
    PYTHONPATH=src python benchmarks/bench_fused_training.py \
        --json-out benchmarks/bench_fused_training.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.config import PipelineConfig
from repro.data.workloads import DataScale, suite_for_modality
from repro.nn.batched import FusedSessionGroup
from repro.sched import EpochScheduler, SchedulerConfig
from repro.zoo.finetune import FineTuneConfig, FineTuner
from repro.zoo.hub import ModelHub

#: Required fused/serial round-throughput multiple at S = GROUP_SIZE (full).
REQUIRED_SPEEDUP = 3.0
#: Relaxed smoke floor: at the small data scale one epoch is tens of
#: microseconds of BLAS, so python loop overhead dominates both paths;
#: smoke primarily gates bitwise equality and sanity-checks fusion wins.
SMOKE_SPEEDUP = 1.1
#: Stacked group size of the headline measurement (the acceptance point).
GROUP_SIZE = 8
#: Epochs advanced per timed round.
ROUND_EPOCHS = 8
#: Timed trials; the median decides the gate (single-CPU timings jitter).
TRIALS = 5


def build_sessions(*, smoke: bool, seed: int):
    """``GROUP_SIZE`` same-task sessions (the round executor's hot group)."""
    scale = DataScale.small() if smoke else DataScale.default()
    suite = suite_for_modality("nlp", seed=seed, scale=scale)
    hub = ModelHub(suite, seed=seed)
    task = suite.task(suite.dataset_names[0])
    config = FineTuneConfig(epochs=ROUND_EPOCHS)
    names = hub.model_names[:GROUP_SIZE]

    def fresh():
        tuner = FineTuner(config, seed=seed)
        return [tuner.start_session(hub.get(name), task) for name in names]

    return fresh, task.name, len(names)


def assert_bitwise(fresh) -> None:
    """Fused trajectories must equal serial ones exactly — or we stop."""
    serial = fresh()
    fused = fresh()
    for session in serial:
        session.train_epochs(ROUND_EPOCHS)
    report = FusedSessionGroup(fused).advance(ROUND_EPOCHS, probe=True)
    if report.delegated:
        raise SystemExit(
            f"FAIL: fused probe diverged from the serial oracle: "
            f"{report.mismatches}"
        )
    for a, b in zip(serial, fused):
        same = (
            a.curve.train_loss == b.curve.train_loss
            and a.curve.val_accuracy == b.curve.val_accuracy
            and a.curve.test_accuracy == b.curve.test_accuracy
            and a.head.history.train_accuracy == b.head.history.train_accuracy
            and all(
                np.array_equal(pa, pb)
                for pa, pb in zip(a.head.net.params(), b.head.net.params())
            )
        )
        if not same:
            raise SystemExit(
                f"FAIL: fused curves diverge from serial for "
                f"{a.curve.model_name}"
            )


def time_rounds(fresh) -> Tuple[float, float]:
    """Median serial and fused wall-clock of one ``ROUND_EPOCHS`` round."""
    serial_times: List[float] = []
    fused_times: List[float] = []
    fresh()[0].train_epochs(1)  # warm caches outside the timed region
    for _ in range(TRIALS):
        sessions = fresh()
        t0 = time.perf_counter()
        for _ in range(ROUND_EPOCHS):
            for session in sessions:
                session.train_epochs(1)
        serial_times.append(time.perf_counter() - t0)

        sessions = fresh()
        group = FusedSessionGroup(sessions)
        t0 = time.perf_counter()
        group.advance(ROUND_EPOCHS, probe=False)
        fused_times.append(time.perf_counter() - t0)
    return statistics.median(serial_times), statistics.median(fused_times)


def eval_micro_gate(fresh) -> Dict[str, float]:
    """Single-pass vs two-pass held-out scoring: bitwise equal, timed."""
    session = fresh()[0]
    session.train_epochs(2)
    single = session.evaluate()
    double = (session.validation_accuracy(), session.test_accuracy())
    if single != double:
        raise SystemExit(
            "FAIL: single-pass evaluate() diverges from the two-pass form"
        )
    repeats = 50
    t0 = time.perf_counter()
    for _ in range(repeats):
        session.evaluate()
    single_seconds = (time.perf_counter() - t0) / repeats
    t0 = time.perf_counter()
    for _ in range(repeats):
        session.validation_accuracy()
        session.test_accuracy()
    double_seconds = (time.perf_counter() - t0) / repeats
    return {
        "single_pass_seconds": single_seconds,
        "two_pass_seconds": double_seconds,
        "eval_speedup": double_seconds / single_seconds
        if single_seconds > 0
        else float("inf"),
    }


def scheduler_pass(*, smoke: bool, seed: int) -> Dict[str, object]:
    """End-to-end: identical answers fused vs not, plus round counters."""
    scale = DataScale.small() if smoke else DataScale.default()
    suite = suite_for_modality("nlp", seed=seed, scale=scale)
    hub = ModelHub(suite, seed=seed)
    if smoke:
        hub = hub.subset(hub.model_names[:10])
    artifacts = OfflineArtifacts.build(
        hub, suite, config=PipelineConfig.for_modality("nlp")
    )
    mix = (list(suite.target_names) or list(suite.dataset_names))[:2]
    oracle = TwoPhaseSelector(artifacts)
    expected = {target: oracle.select(target) for target in set(mix)}

    def run(fused: bool):
        # Unbounded round budget: each round drains a whole selection
        # stage, so all of a target's candidates sit at the same epoch
        # position — the shape the fused partitioner stacks.
        scheduler = EpochScheduler.for_artifacts(
            artifacts,
            config=SchedulerConfig(
                max_concurrent=len(mix),
                max_queue=len(mix),
                epoch_budget=None,
                fused_training=fused,
            ),
        )
        t0 = time.perf_counter()
        handles = [scheduler.submit(target) for target in mix]
        scheduler.run_until_idle()
        elapsed = time.perf_counter() - t0
        results = [scheduler.result(handle) for handle in handles]
        return elapsed, results, scheduler.stats()["train"]

    fused_elapsed, fused_results, train = run(True)
    plain_elapsed, plain_results, _ = run(False)
    for target, fused_result, plain_result in zip(mix, fused_results, plain_results):
        want = expected[target]
        for got in (fused_result, plain_result):
            if (
                got.selected_model != want.selected_model
                or got.selected_accuracy != want.selected_accuracy
                or got.selection.stages != want.selection.stages
            ):
                raise SystemExit(
                    f"FAIL: scheduled result for {target!r} diverges from "
                    "the serial selector"
                )
    return {
        "requests": len(mix),
        "targets": mix,
        "fused_seconds": fused_elapsed,
        "plain_seconds": plain_elapsed,
        "train_counters": train,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration with a relaxed gate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the measured record as JSON")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    print(f"[bench] fused multi-session training ({mode}), "
          f"S={GROUP_SIZE}, {ROUND_EPOCHS} epochs/round, {TRIALS} trials")
    fresh, task_name, group_size = build_sessions(smoke=args.smoke, seed=args.seed)
    if group_size < GROUP_SIZE:
        raise SystemExit(f"FAIL: hub too small for S={GROUP_SIZE}")

    print("[gate ] bitwise: fused round == serial round ...")
    assert_bitwise(fresh)
    print("        ok (curves, histories and parameters identical)")

    serial_seconds, fused_seconds = time_rounds(fresh)
    speedup = serial_seconds / fused_seconds if fused_seconds > 0 else float("inf")
    required = SMOKE_SPEEDUP if args.smoke else REQUIRED_SPEEDUP

    eval_record = eval_micro_gate(fresh)
    sched_record = scheduler_pass(smoke=args.smoke, seed=args.seed)

    record = {
        "mode": mode,
        "task": task_name,
        "group_size": GROUP_SIZE,
        "round_epochs": ROUND_EPOCHS,
        "trials": TRIALS,
        "serial_round_seconds": serial_seconds,
        "fused_round_seconds": fused_seconds,
        "round_speedup": speedup,
        "required_speedup": required,
        "serial_epochs_per_second": GROUP_SIZE * ROUND_EPOCHS / serial_seconds,
        "fused_epochs_per_second": GROUP_SIZE * ROUND_EPOCHS / fused_seconds,
        "single_pass_eval": eval_record,
        "scheduler": sched_record,
    }

    print(f"  serial round : {serial_seconds * 1e3:8.2f} ms "
          f"({record['serial_epochs_per_second']:8.0f} session-epochs/s)")
    print(f"  fused round  : {fused_seconds * 1e3:8.2f} ms "
          f"({record['fused_epochs_per_second']:8.0f} session-epochs/s, "
          f"{speedup:.2f}x)")
    print(f"  eval         : single-pass {eval_record['single_pass_seconds'] * 1e6:.0f}us "
          f"vs two-pass {eval_record['two_pass_seconds'] * 1e6:.0f}us "
          f"({eval_record['eval_speedup']:.2f}x), bitwise identical")
    counters = sched_record["train_counters"]
    print(f"  scheduler    : {counters['fused_groups']} fused groups, "
          f"{counters['fused_epochs']} fused / {counters['serial_epochs']} serial "
          f"epochs, {counters['delegated_groups']} delegated; results identical")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"  wrote {args.json_out}")

    if speedup < required:
        print(f"FAIL: fused round speedup {speedup:.2f}x is below the "
              f"required {required:.1f}x at S={GROUP_SIZE}", file=sys.stderr)
        return 1
    print(f"PASS: >= {required:.1f}x fused round throughput at S={GROUP_SIZE} "
          "with bitwise-identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
