"""Table II benchmark — non-singleton cluster membership listing."""

from __future__ import annotations

from conftest import emit

from repro.experiments import table2_cluster_membership


def test_table2_cluster_membership(nlp_context, cv_context, benchmark):
    records = benchmark(table2_cluster_membership.run, nlp_context)
    assert records, "NLP clustering should produce non-singleton clusters"

    for context in (nlp_context, cv_context):
        rows = table2_cluster_membership.run(context)
        summary = table2_cluster_membership.run_summary(context)
        emit(
            f"Table II ({context.modality})",
            table2_cluster_membership.render(rows)
            + f"\nsummary: {summary}",
        )
        # Most models should land in non-singleton clusters, as in the paper.
        assert summary["num_models_in_non_singleton"] >= summary["num_models"] * 0.5
