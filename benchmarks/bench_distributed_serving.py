"""Benchmark: the routed serving tier's overhead, scaling and brownout.

Measures what ``python -m repro serve --workers N`` costs and buys over
the single-process tier, using real serve subprocesses driven over the
TCP JSON-lines protocol (the same wire a client sees):

1. **Routing overhead** — the same request mix against a single process
   and against a router over *one* worker.  The router adds a process
   hop, wire-id rewriting and admission accounting per request; on a
   single-CPU host that must stay within ``OVERHEAD_MULTIPLE`` of the
   direct path.  Results must stay bitwise identical, tier for tier.
2. **Scaling** — the mix against a router over *two* workers.  The
   near-linear gate (``SCALING_MULTIPLE``) is only enforced when the
   host actually has two CPUs to scale onto; on a single-CPU host the
   phase still runs (placement, equivalence) but the throughput gate is
   recorded as skipped.
3. **Brownout** — a router capped at ``--max-inflight 2`` receives 12
   requests at once.  The overflow must come back as *structured*
   ``queue_full`` failures, synchronously (bounded rejection latency),
   while every admitted request still completes.  The JSON record keeps
   the observed ``queue_full_errors`` count.

Run with::

    PYTHONPATH=src python benchmarks/bench_distributed_serving.py
    PYTHONPATH=src python benchmarks/bench_distributed_serving.py --smoke
    PYTHONPATH=src python benchmarks/bench_distributed_serving.py \
        --json-out benchmarks/bench_distributed_serving.json

``--smoke`` runs a reduced mix (fewer requests, smaller hub) with a
relaxed overhead gate — per-request work shrinks faster than the fixed
per-hop cost, so the ratio is honest but noisier there.  The brownout
and equivalence gates are exact in both modes.

The benchmark deliberately imports nothing from ``tests/`` — its client
is built on :mod:`repro.distrib.wire` alone, so it doubles as a worked
example of driving the serve protocol from library code.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import repro
from repro.distrib.wire import JsonLinesConnection

#: Request mix: targets whose SHA-256 routing keys spread over a
#: two-worker ring (asserted at runtime, not assumed).
FULL_TARGETS = ("mnli", "sst2", "qnli", "cola", "rte", "mrpc", "boolq", "qqp")
SMOKE_TARGETS = ("mnli", "sst2", "qnli", "cola")

#: Routed-over-one-worker wall clock must stay within this multiple of
#: the single-process tier (the acceptance bound for the router hop).
OVERHEAD_MULTIPLE = 1.25
#: Relaxed smoke bound: tiny requests make the fixed hop cost loom larger.
SMOKE_OVERHEAD_MULTIPLE = 1.6

#: Two workers must beat one by this multiple — enforced only when the
#: host has >= 2 CPUs (a 1-CPU host time-slices the workers).
SCALING_MULTIPLE = 1.4

#: Brownout probe: requests thrown at a router capped at this in-flight
#: bound; everything past the cap must fail fast with ``queue_full``.
BROWNOUT_INFLIGHT = 2
BROWNOUT_REQUESTS = 12
#: Rejections are synchronous admission decisions, not queue timeouts —
#: the slowest one must come back well before any training finishes.
REJECTION_LATENCY_BOUND = 5.0

#: Reply fields that legitimately differ between runs/tiers.
VOLATILE = ("id", "latency_seconds")

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

_TERMINAL = ("result", "failed")


class ServeTier:
    """One real ``python -m repro serve`` process plus a protocol client.

    ``workers=None`` is the single-process tier; an integer serves
    through the consistent-hash router.  The client half is nothing but
    :class:`~repro.distrib.wire.JsonLinesConnection` — no test imports.
    """

    def __init__(
        self,
        store_dir: Path,
        *,
        workers: Optional[int] = None,
        num_models: int = 8,
        extra_args: Sequence[str] = (),
        timeout: float = 240.0,
    ) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        # Never inherit an armed crash failpoint from the caller.
        env.pop("REPRO_CRASH_SITE", None)
        env.pop("REPRO_CRASH_AT", None)
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--modality", "nlp", "--scale", "small",
            "--num-models", str(num_models),
            "--store-dir", str(store_dir),
            "--port", "0",
        ]
        if workers is not None:
            argv += ["--workers", str(workers)]
        argv += list(extra_args)
        self.timeout = timeout
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        banner_line = self.proc.stdout.readline()
        if not banner_line:
            raise RuntimeError(
                "serve process died before its banner: "
                + (self.proc.stderr.read() or "")[-2000:]
            )
        self.banner = json.loads(banner_line)
        self.conn = JsonLinesConnection(
            "127.0.0.1", self.banner["port"], timeout=timeout
        )

    # ------------------------------------------------------------------ #
    def run_load(
        self, targets: Sequence[str], *, top_k: int = 3
    ) -> Tuple[float, Dict[str, dict], List[float]]:
        """Submit one select per target at once; await every terminal event.

        Returns (wall seconds, ``{request id: stripped terminal event}``,
        per-request latencies).  Raises on a dropped connection.
        """
        send_times: Dict[str, float] = {}
        started = time.perf_counter()
        for index, target in enumerate(targets):
            rid = f"c{index}"
            self.conn.send(
                {"op": "select", "target": target, "top_k": top_k, "id": rid}
            )
            send_times[rid] = time.perf_counter()
        events: Dict[str, dict] = {}
        latencies: List[float] = []
        while len(events) < len(targets):
            message = self.conn.recv()
            if message is None:
                raise RuntimeError("server connection closed mid-benchmark")
            if message.get("event") in _TERMINAL and message.get("id") in send_times:
                rid = message["id"]
                latencies.append(time.perf_counter() - send_times[rid])
                events[rid] = {
                    k: v for k, v in message.items() if k not in VOLATILE
                }
        return time.perf_counter() - started, events, latencies

    def close(self) -> None:
        try:
            self.conn.send({"op": "shutdown"})
        except OSError:
            pass
        self.conn.close()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)

    def __enter__(self) -> "ServeTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a latency sample."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def phase_record(seconds: float, latencies: List[float], n: int) -> dict:
    return {
        "seconds": seconds,
        "rps": n / seconds if seconds > 0 else float("inf"),
        "latency_p50_seconds": percentile(latencies, 0.50),
        "latency_p95_seconds": percentile(latencies, 0.95),
    }


def run_throughput_phase(
    root: Path, label: str, targets: Sequence[str], *,
    workers: Optional[int], num_models: int,
) -> Tuple[dict, Dict[str, dict], Optional[list]]:
    print(f"[bench] {label}: {len(targets)} requests ...")
    with ServeTier(root / label, workers=workers, num_models=num_models) as tier:
        seconds, events, latencies = tier.run_load(targets)
        fleet = tier.banner.get("workers")
    record = phase_record(seconds, latencies, len(targets))
    print(f"         {seconds:6.2f}s  ({record['rps']:.2f} req/s, "
          f"p95 {record['latency_p95_seconds']:.2f}s)")
    failures = [e for e in events.values() if e["event"] != "result"]
    if failures:
        raise RuntimeError(f"{label}: unexpected failures: {failures}")
    return record, events, fleet


def run_brownout_phase(root: Path, *, num_models: int) -> dict:
    print(f"[bench] brownout: {BROWNOUT_REQUESTS} requests at "
          f"--max-inflight {BROWNOUT_INFLIGHT} ...")
    with ServeTier(
        root / "brownout",
        workers=1,
        num_models=num_models,
        extra_args=("--max-inflight", str(BROWNOUT_INFLIGHT)),
    ) as tier:
        targets = ["mnli"] * BROWNOUT_REQUESTS
        seconds, events, latencies = tier.run_load(targets)
    rejected = [e for e in events.values() if e["event"] == "failed"]
    completed = [e for e in events.values() if e["event"] == "result"]
    queue_full = [
        e for e in rejected if e.get("error", {}).get("code") == "queue_full"
    ]
    # Rejection latency: failures correlate 1:1 with the slowest
    # latencies' complement — recompute directly from the event split.
    rejection_latencies = sorted(latencies)[: len(rejected)]
    record = {
        "requests": BROWNOUT_REQUESTS,
        "max_inflight": BROWNOUT_INFLIGHT,
        "seconds": seconds,
        "completed": len(completed),
        "queue_full_errors": len(queue_full),
        "other_failures": len(rejected) - len(queue_full),
        "rejection_p99_seconds": (
            percentile(rejection_latencies, 0.99) if rejection_latencies else 0.0
        ),
        "rejection_latency_bound_seconds": REJECTION_LATENCY_BOUND,
    }
    print(f"         {record['completed']} completed, "
          f"{record['queue_full_errors']} queue_full "
          f"(rejection p99 {record['rejection_p99_seconds']:.3f}s)")
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced mix with a relaxed overhead gate")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the measured record as JSON")
    args = parser.parse_args(argv)

    targets = SMOKE_TARGETS if args.smoke else FULL_TARGETS
    num_models = 6 if args.smoke else 8
    overhead_bound = SMOKE_OVERHEAD_MULTIPLE if args.smoke else OVERHEAD_MULTIPLE
    cpus = os.cpu_count() or 1
    scaling_enforced = cpus >= 2

    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-distrib-") as tmp:
        root = Path(tmp)
        single, single_events, _ = run_throughput_phase(
            root, "single", targets, workers=None, num_models=num_models)
        routed1, routed1_events, _ = run_throughput_phase(
            root, "routed-1", targets, workers=1, num_models=num_models)
        routed2, routed2_events, fleet = run_throughput_phase(
            root, "routed-2", targets, workers=2, num_models=num_models)
        brownout = run_brownout_phase(root, num_models=num_models)

    if fleet is not None and len(fleet) != 2:
        failures.append(f"expected a 2-worker fleet, banner shows {fleet}")

    identical = single_events == routed1_events == routed2_events
    overhead = routed1["seconds"] / single["seconds"]
    scaling = routed1["seconds"] / routed2["seconds"]

    record = {
        "mode": "smoke" if args.smoke else "full",
        "num_requests": len(targets),
        "targets": list(targets),
        "num_models": num_models,
        "cpu_count": cpus,
        "single": single,
        "routed_1_worker": routed1,
        "routed_2_workers": routed2,
        "overhead_multiple": overhead,
        "overhead_bound": overhead_bound,
        "scaling_multiple": scaling,
        "scaling_bound": SCALING_MULTIPLE,
        "scaling_gate": "enforced" if scaling_enforced else "skipped_single_cpu",
        "identical_results": identical,
        "brownout": brownout,
        "queue_full_errors": brownout["queue_full_errors"],
    }

    print(f"  overhead   : routed/1-worker is {overhead:.2f}x the single "
          f"process (bound {overhead_bound:.2f}x)")
    print(f"  scaling    : 2 workers are {scaling:.2f}x over 1 "
          f"({record['scaling_gate']}, bound {SCALING_MULTIPLE:.1f}x)")
    print(f"  identical results across tiers: {identical}")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"  wrote {args.json_out}")

    if not identical:
        failures.append("results diverge between the single and routed tiers")
    if overhead > overhead_bound:
        failures.append(
            f"router overhead {overhead:.2f}x exceeds {overhead_bound:.2f}x")
    if scaling_enforced and scaling < SCALING_MULTIPLE:
        failures.append(
            f"2-worker scaling {scaling:.2f}x is below {SCALING_MULTIPLE:.1f}x")
    if brownout["completed"] != BROWNOUT_INFLIGHT:
        failures.append(
            f"brownout completed {brownout['completed']} requests, "
            f"expected exactly {BROWNOUT_INFLIGHT}")
    if brownout["queue_full_errors"] < 1:
        failures.append("saturation produced no structured queue_full errors")
    if brownout["other_failures"]:
        failures.append(
            f"{brownout['other_failures']} rejections were not queue_full")
    if brownout["rejection_p99_seconds"] > REJECTION_LATENCY_BOUND:
        failures.append(
            f"rejection p99 {brownout['rejection_p99_seconds']:.2f}s exceeds "
            f"{REJECTION_LATENCY_BOUND:.1f}s — brownout is queueing, not failing fast")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("PASS: routed tier within overhead bound, identical results, "
          "structured brownout")
    return 0


if __name__ == "__main__":
    sys.exit(main())
