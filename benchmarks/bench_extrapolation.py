"""Benchmark: curve-extrapolation early stopping vs the exact path.

Measures what speculative pruning buys the scheduler on the PR-5
concurrent-selection mix: the same 8 concurrent requests over overlapping
targets are run twice through an :class:`~repro.sched.scheduler
.EpochScheduler` — once in exact mode, once with ``extrapolate=True`` —
and the aggregate epochs *actually trained* (session-pool accounting, the
resource a host really spends) are compared.

The configuration is the successive-halving ablation
(``use_trend_filter=False``) with a widened recall pool: with the paper's
trend filter enabled, Algorithm 1 already collapses the cohort to one arm
after the first rung, so there is nothing left to speculate about.  The
speculative layer recovers those savings in the ablation configuration
from the *offline* curves alone — retiring arms whose
:class:`~repro.core.extrapolation.CurveBound` ceiling cannot reach the
rung leader's trajectory — while journaling a budget-honesty record
(predicted vs realised regret) for every arm it retires.

Three gates must hold:

1. **Budget**: trained epochs drop by at least the required fraction
   (30% full / 10% smoke) relative to the exact run of the same mix.
2. **Accuracy**: the mean selected test accuracy of the speculative run
   does not fall below the exact run's by more than the noise bound
   (one-sided — a speculative run picking a *better* checkpoint is fine).
3. **Exactness**: the exact scheduled run is bitwise-identical to the
   sequential blocking path (speculation must be strictly opt-in).

Run with::

    PYTHONPATH=src python benchmarks/bench_extrapolation.py
    PYTHONPATH=src python benchmarks/bench_extrapolation.py --smoke
    PYTHONPATH=src python benchmarks/bench_extrapolation.py \
        --json-out benchmarks/bench_extrapolation.json

``--smoke`` runs a reduced configuration (small data scale, truncated
hub) with a relaxed gate — the tier ``make ci`` runs on every change; the
full configuration records the numbers quoted in ``docs/extrapolation.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Tuple

from repro.core.config import PipelineConfig
from repro.core.pipeline import OfflineArtifacts, TwoPhaseSelector
from repro.core.results import TwoPhaseResult
from repro.data.workloads import DataScale, suite_for_modality
from repro.sched import EpochScheduler, SchedulerConfig
from repro.zoo.hub import ModelHub

#: Required trained-epoch reduction (full run) — the acceptance criterion.
REQUIRED_REDUCTION = 0.30
#: Relaxed smoke gate: the truncated hub leaves fewer dominated arms to
#: retire, so smoke primarily gates that pruning fires and stays honest.
SMOKE_REDUCTION = 0.10
#: Mean selected test accuracy of the speculative run must not fall more
#: than this far below the exact run's (one-sided: beating it is fine).
ACCURACY_NOISE = 0.015
#: Number of concurrent requests (same load point as the PR-5 bench).
NUM_REQUESTS = 8
#: Widened recall pool (full run): speculation earns its keep on the arms
#: the coarse phase recalls beyond the default top-10.
TOP_K = 20
SMOKE_TOP_K = 10


def build_benchmark(*, smoke: bool, seed: int) -> Tuple[OfflineArtifacts, List[str], int]:
    """Artifacts plus the 8-request task mix (ablation configuration)."""
    from dataclasses import replace

    scale = DataScale.small() if smoke else DataScale.default()
    suite = suite_for_modality("nlp", seed=seed, scale=scale)
    hub = ModelHub(suite, seed=seed)
    if smoke:
        hub = hub.subset(hub.model_names[:10])
    config = PipelineConfig.for_modality("nlp")
    config = replace(
        config,
        recall=replace(config.recall, cache_proxy_scores=True),
        fine_selection=replace(config.fine_selection, use_trend_filter=False),
    )
    artifacts = OfflineArtifacts.build(hub, suite, config=config)
    distinct = (list(suite.target_names) or list(suite.dataset_names))[:2]
    mix = [distinct[i % len(distinct)] for i in range(NUM_REQUESTS)]
    return artifacts, mix, (SMOKE_TOP_K if smoke else TOP_K)


def run_scheduled(
    artifacts: OfflineArtifacts,
    mix: List[str],
    *,
    seed: int,
    top_k: int,
    extrapolate: bool,
) -> Tuple[float, List[TwoPhaseResult], Dict[str, object]]:
    """One concurrent pass of the mix; exact or speculative."""
    from repro.zoo.finetune import FineTuner

    scheduler = EpochScheduler.for_artifacts(
        artifacts,
        fine_tuner=FineTuner(seed=seed),
        config=SchedulerConfig(
            max_concurrent=NUM_REQUESTS,
            max_queue=NUM_REQUESTS,
            epoch_budget=NUM_REQUESTS,
        ),
    )
    started = time.perf_counter()
    handles = [
        scheduler.submit(target, top_k=top_k, extrapolate=extrapolate)
        for target in mix
    ]
    scheduler.run_until_idle()
    elapsed = time.perf_counter() - started
    results = [scheduler.result(handle) for handle in handles]
    stats = scheduler.stats()
    return elapsed, results, stats


def run_sequential(
    artifacts: OfflineArtifacts, mix: List[str], *, seed: int, top_k: int
) -> List[TwoPhaseResult]:
    """The blocking always-exact baseline the exact scheduled run must match."""
    selector = TwoPhaseSelector(artifacts, seed=seed)
    return [selector.select(target, top_k=top_k) for target in mix]


def results_identical(a: TwoPhaseResult, b: TwoPhaseResult) -> bool:
    """Bitwise equality of everything a TwoPhaseResult records."""
    return (
        a.selected_model == b.selected_model
        and a.selected_accuracy == b.selected_accuracy
        and a.selection.stages == b.selection.stages
        and a.selection.final_accuracies == b.selection.final_accuracies
        and a.selection.extras == b.selection.extras
        and a.recall.recall_scores == b.recall.recall_scores
        and a.total_cost == b.total_cost
    )


def mean_accuracy(results: List[TwoPhaseResult]) -> float:
    return sum(r.selected_accuracy for r in results) / len(results)


def regret_report(results: List[TwoPhaseResult]) -> Dict[str, object]:
    """Aggregate the budget-honesty extras across the mix's requests."""
    pruned = 0
    epochs_saved = 0.0
    regret_bound = 0.0
    actual_regret = 0.0
    for result in results:
        payload = result.selection.extras.get("extrapolation")
        if not payload:
            continue
        pruned += len(payload["pruned"])
        epochs_saved += float(payload["epochs_saved"])
        regret_bound = max(regret_bound, float(payload["regret_bound"]))
        for record in payload["pruned"].values():
            actual_regret = max(
                actual_regret, float(record.get("actual_regret", 0.0))
            )
    return {
        "arms_pruned": pruned,
        # Sum of full-budget epochs the pruned arms can no longer be
        # charged — an upper bound on realised savings (halving might
        # have retired some of them earlier anyway).
        "epochs_saved_bound": epochs_saved,
        "max_regret_bound": regret_bound,
        "max_actual_regret": actual_regret,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced configuration with a relaxed gate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the measured record as JSON")
    args = parser.parse_args(argv)

    print(f"[offline] building artifacts ({'smoke' if args.smoke else 'full'}) ...")
    artifacts, mix, top_k = build_benchmark(smoke=args.smoke, seed=args.seed)
    print(f"[bench] {NUM_REQUESTS} requests over targets {sorted(set(mix))} "
          f"({len(artifacts.hub)} models, top_k={top_k}, trend filter off)")

    from repro.cache import clear_cache

    clear_cache()
    seq_results = run_sequential(artifacts, mix, seed=args.seed, top_k=top_k)
    clear_cache()
    _, exact_results, exact_stats = run_scheduled(
        artifacts, mix, seed=args.seed, top_k=top_k, extrapolate=False
    )
    clear_cache()
    _, spec_results, spec_stats = run_scheduled(
        artifacts, mix, seed=args.seed, top_k=top_k, extrapolate=True
    )

    exact_trained = exact_stats["session_pool"]["epochs_trained"]
    spec_trained = spec_stats["session_pool"]["epochs_trained"]
    reduction = 1.0 - spec_trained / exact_trained if exact_trained else 0.0
    exact_charged = sum(r.selection.runtime_epochs for r in exact_results)
    spec_charged = sum(r.selection.runtime_epochs for r in spec_results)
    exact_acc = mean_accuracy(exact_results)
    spec_acc = mean_accuracy(spec_results)
    accuracy_delta = exact_acc - spec_acc  # positive = speculative regret
    identical = all(
        results_identical(a, b) for a, b in zip(seq_results, exact_results)
    )
    honesty = regret_report(spec_results)
    required = SMOKE_REDUCTION if args.smoke else REQUIRED_REDUCTION

    record = {
        "mode": "smoke" if args.smoke else "full",
        "num_requests": NUM_REQUESTS,
        "targets": mix,
        "top_k": top_k,
        "num_models": len(artifacts.hub),
        "exact_trained_epochs": exact_trained,
        "speculative_trained_epochs": spec_trained,
        "trained_reduction": reduction,
        "required_reduction": required,
        "exact_charged_epochs": exact_charged,
        "speculative_charged_epochs": spec_charged,
        "exact_mean_accuracy": exact_acc,
        "speculative_mean_accuracy": spec_acc,
        "accuracy_delta": accuracy_delta,
        "accuracy_noise": ACCURACY_NOISE,
        "exact_matches_sequential": identical,
        "arms_pruned": spec_stats["arms_pruned"],
        **honesty,
    }

    print(f"  trained    : exact {exact_trained} epochs -> speculative "
          f"{spec_trained} epochs  ({reduction:.1%} reduction)")
    print(f"  charged    : exact {exact_charged:.0f} -> speculative "
          f"{spec_charged:.0f} epoch-equivalents")
    print(f"  accuracy   : exact {exact_acc:.4f} vs speculative {spec_acc:.4f} "
          f"(regret {accuracy_delta:+.4f})")
    print(f"  honesty    : {honesty['arms_pruned']} arms pruned "
          f"({exact_charged - spec_charged:.0f} charged epochs measured, "
          f"{honesty['epochs_saved_bound']:.0f} bound), regret bound "
          f"{honesty['max_regret_bound']:.4f}, realised "
          f"{honesty['max_actual_regret']:.4f}")
    print(f"  exact == sequential: {identical}")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"  wrote {args.json_out}")

    failed = False
    if not identical:
        print("FAIL: exact scheduled results diverge from the sequential path",
              file=sys.stderr)
        failed = True
    if reduction < required:
        print(f"FAIL: trained-epoch reduction {reduction:.1%} is below the "
              f"required {required:.0%}", file=sys.stderr)
        failed = True
    if accuracy_delta > ACCURACY_NOISE:
        print(f"FAIL: speculative accuracy regret {accuracy_delta:.4f} "
              f"exceeds the noise bound {ACCURACY_NOISE}", file=sys.stderr)
        failed = True
    if honesty["arms_pruned"] == 0:
        print("FAIL: speculative run pruned nothing", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"PASS: >= {required:.0%} trained-epoch reduction, accuracy within "
          f"noise, exact path bitwise-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
