"""Fig. 7 benchmark — selected-model accuracy, SH vs FS."""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import fig7_selection_quality


def test_fig7_selection_quality(nlp_context, cv_context, benchmark):
    result = benchmark.pedantic(
        fig7_selection_quality.run,
        args=(nlp_context,),
        kwargs={"targets": ("mnli",), "include_full_repository": False},
        rounds=1,
        iterations=1,
    )
    assert result[0]["fs_accuracy"] > 0

    all_records = []
    for context in (nlp_context, cv_context):
        records = fig7_selection_quality.run(context)
        all_records.extend(records)
        # Shape check: on average fine-selection matches or beats successive
        # halving, and both stay within the best/worst bounds of the top-10.
        fs = np.mean([r["fs_accuracy"] for r in records])
        sh = np.mean([r["sh_accuracy"] for r in records])
        assert fs >= sh - 0.02
        for record in records:
            # The top-10 best/worst bounds only apply to the recalled pool;
            # the full-repository pool may select a model outside the top-10.
            # A small tolerance absorbs fine-tuning run-to-run variance.
            if record["pool"].startswith("top"):
                assert record["fs_accuracy"] <= record["best_in_top10"] + 0.03
    emit("Fig. 7", fig7_selection_quality.render(all_records))
