"""Fig. 3 / Fig. 8 benchmark — validation curves of the top-10 recalled models."""

from __future__ import annotations

from conftest import emit

from repro.experiments import fig3_validation_curves


def test_fig3_validation_curves(nlp_context, benchmark):
    result = benchmark.pedantic(
        fig3_validation_curves.run,
        args=(nlp_context,),
        kwargs={"target_name": "mnli", "top_k": 10},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 3 / Fig. 8 (NLP)", fig3_validation_curves.render(result))
    # Early validation accuracy should be informative of the final ordering
    # under the default hyper-parameters (the paper's early-stopping premise).
    default_setting = result["settings"]["default"]
    assert default_setting["early_vs_final_spearman"] > 0.0
