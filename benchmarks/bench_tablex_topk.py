"""Table X (appendix D) benchmark — Eq. 1 top-k parameter sweep."""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import tablex_topk_parameter


def test_tablex_topk_parameter(nlp_context, cv_context, benchmark):
    records = benchmark(tablex_topk_parameter.run, nlp_context)
    assert len(records) == 3

    all_records = []
    for context in (nlp_context, cv_context):
        rows = tablex_topk_parameter.run(context)
        all_records.extend(rows)
        silhouettes = [r["silhouette"] for r in rows]
        # Shape check: the parameter has limited influence — the silhouette
        # fluctuates within a bounded range rather than collapsing.
        assert max(silhouettes) - min(silhouettes) < 0.5
        assert all(np.isfinite(s) for s in silhouettes)
    emit("Table X (appendix D)", tablex_topk_parameter.render(all_records))
