"""Table VI benchmark — end-to-end two-phase pipeline vs BF and SH."""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments import table6_end_to_end


def test_table6_end_to_end(nlp_context, cv_context, benchmark):
    # Time one full online two-phase query (coarse recall + fine selection).
    benchmark.pedantic(
        lambda: nlp_context.selector.select("mnli"), rounds=2, iterations=1
    )

    all_records = []
    for context in (nlp_context, cv_context):
        records = table6_end_to_end.run(context)
        all_records.extend(records)
        # Shape checks mirroring the paper: the two-phase pipeline is several
        # times cheaper than SH and BF while losing little accuracy.
        assert np.mean([r["speedup_vs_bf"] for r in records]) >= 3.0
        assert np.mean([r["speedup_vs_sh"] for r in records]) >= 1.5
        gap = np.mean([r["acc_bf"] - r["acc_2ph"] for r in records])
        assert gap <= 0.05
    emit("Table VI", table6_end_to_end.render(all_records))
