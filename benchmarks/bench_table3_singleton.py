"""Table III benchmark — singleton vs non-singleton cluster performance."""

from __future__ import annotations

from conftest import emit

from repro.experiments import table3_singleton_vs_non


def test_table3_singleton_vs_non(nlp_context, cv_context, benchmark):
    records = benchmark(table3_singleton_vs_non.run, nlp_context)
    assert len(records) == 2

    all_records = []
    for context in (nlp_context, cv_context):
        rows = table3_singleton_vs_non.run(context)
        all_records.extend(rows)
        by_type = {row["cluster_type"]: row for row in rows}
        # Shape check: the strong checkpoints concentrate in non-singleton
        # clusters (they hold the majority of per-dataset best models).
        assert (
            by_type["non-singleton"]["num_best_models"]
            >= by_type["singleton"]["num_best_models"]
        )
    emit("Table III", table3_singleton_vs_non.render(all_records))
