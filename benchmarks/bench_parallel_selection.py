"""Benchmark: serial vs parallel batched selection (docs/parallelism.md).

Times :class:`repro.core.batch.BatchedSelectionRunner` over a batch of
target tasks with the serial, thread and process executors, verifies that
every backend returns **identical** :class:`~repro.core.results.SelectionResult`
records (selected model, per-candidate final accuracies, epoch accounting),
and reports the wall-clock speedups.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_selection.py [--quick]

The script exits non-zero if any backend's report diverges from the serial
reference, or if the process executor at 4 workers is less than 2x faster
than the serial path (the PR's acceptance bar).  The speedup gate only
applies where it is physically meaningful: on hosts exposing fewer than 2
CPUs to this process (``os.sched_getaffinity``), no amount of parallelism
can beat serial compute, so the gate is reported as skipped and the
benchmark instead asserts that the parallel overhead stays under 25%.
``--quick`` runs a reduced configuration without any timing gate for fast
smoke checks.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Tuple

from repro.core.batch import BatchedSelectionRunner, BatchSelectionReport
from repro.core.config import PipelineConfig
from repro.core.pipeline import OfflineArtifacts
from repro.data.workloads import DataScale, suite_for_modality
from repro.zoo.hub import ModelHub

#: Executor specs compared against the serial reference.
BACKENDS = ("thread:4", "process:4")
#: Minimum accepted speedup of ``process:4`` over serial (full run only,
#: multi-CPU hosts only).
REQUIRED_SPEEDUP = 2.0
#: Maximum accepted parallel *overhead* on single-CPU hosts, where a
#: wall-clock speedup is impossible by construction.
MAX_SINGLE_CPU_OVERHEAD = 1.25


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def build_artifacts(*, quick: bool, seed: int) -> Tuple[OfflineArtifacts, List[str]]:
    """Offline artifacts plus the benchmark's target batch."""
    scale = DataScale.small() if quick else DataScale.default()
    suite = suite_for_modality("nlp", seed=seed, scale=scale)
    hub = ModelHub(suite, seed=seed)
    if quick:
        hub = hub.subset(hub.model_names[:12])
    config = PipelineConfig.for_modality("nlp")
    artifacts = OfflineArtifacts.build(hub, suite, config=config)
    # Batch over every dataset of the suite (benchmarks are valid targets
    # too), so the fan-out has enough independent tasks to keep 4 workers
    # busy.
    targets = list(suite.dataset_names)[: 4 if quick else 12]
    return artifacts, targets


def run_batch(
    artifacts: OfflineArtifacts, targets: List[str], parallel: str, *, seed: int
) -> Tuple[float, BatchSelectionReport]:
    """One timed batched-selection run with the given executor spec."""
    runner = BatchedSelectionRunner(artifacts, seed=seed, parallel=parallel)
    started = time.perf_counter()
    report = runner.run(targets)
    return time.perf_counter() - started, report


def reports_identical(a: BatchSelectionReport, b: BatchSelectionReport) -> bool:
    """Bitwise equality of everything a SelectionResult records."""
    if a.target_names != b.target_names:
        return False
    for name in a.target_names:
        ra, rb = a.result_for(name), b.result_for(name)
        if (
            ra.selected_model != rb.selected_model
            or ra.selected_accuracy != rb.selected_accuracy
            or ra.selection.runtime_epochs != rb.selection.runtime_epochs
            or ra.selection.extra_epoch_cost != rb.selection.extra_epoch_cost
            or ra.selection.final_accuracies != rb.selection.final_accuracies
            or ra.recall.recall_scores != rb.recall.recall_scores
            or ra.recall.recalled_models != rb.recall.recalled_models
        ):
            return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced configuration (no speedup gate) for smoke runs",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    print("[offline] building performance matrix and clustering ...")
    started = time.perf_counter()
    artifacts, targets = build_artifacts(quick=args.quick, seed=args.seed)
    print(
        f"[offline] {len(artifacts.hub)} models, {len(targets)} target tasks, "
        f"{time.perf_counter() - started:.1f}s"
    )

    serial_time, reference = run_batch(artifacts, targets, "serial", seed=args.seed)
    print(f"  serial      {serial_time:8.2f}s   1.00x   (reference)")

    failures: List[str] = []
    speedups = {}
    for spec in BACKENDS:
        elapsed, report = run_batch(artifacts, targets, spec, seed=args.seed)
        identical = reports_identical(reference, report)
        speedups[spec] = serial_time / elapsed if elapsed > 0 else float("inf")
        print(
            f"  {spec:<11} {elapsed:8.2f}s  {speedups[spec]:5.2f}x   "
            f"identical={identical}"
        )
        if not identical:
            failures.append(f"{spec} diverged from the serial reference")

    cpus = available_cpus()
    gate_note = ""
    if not args.quick:
        if cpus >= 2:
            gate_note = f", process:4 >= {REQUIRED_SPEEDUP:.1f}x on {cpus} CPUs"
            if speedups["process:4"] < REQUIRED_SPEEDUP:
                failures.append(
                    f"process:4 speedup {speedups['process:4']:.2f}x is below "
                    f"the required {REQUIRED_SPEEDUP:.1f}x ({cpus} CPUs available)"
                )
        else:
            # One CPU: a wall-clock speedup is impossible, so the meaningful
            # bound is that the parallel machinery stays near-free.
            overhead = 1.0 / speedups["process:4"]
            gate_note = (
                f"; speedup gate skipped on a single-CPU host "
                f"(process:4 overhead {overhead:.2f}x <= {MAX_SINGLE_CPU_OVERHEAD}x)"
            )
            if overhead > MAX_SINGLE_CPU_OVERHEAD:
                failures.append(
                    f"process:4 overhead {overhead:.2f}x exceeds "
                    f"{MAX_SINGLE_CPU_OVERHEAD}x on a single-CPU host"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: all backends identical to serial" + gate_note)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
