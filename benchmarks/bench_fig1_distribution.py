"""Fig. 1 benchmark — accuracy distribution of the whole repository on one task.

Times the ground-truth evaluation of a single checkpoint on the Fig. 1 task
(the unit of work the figure is built from) and prints the full sorted
accuracy series for both modalities.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import fig1_distribution


def test_fig1_distribution(nlp_context, cv_context, benchmark):
    model = nlp_context.hub.get(nlp_context.hub.model_names[0])
    task = nlp_context.suite.task("mnli")

    def fine_tune_one_model():
        return nlp_context.fine_tuner.fine_tune(
            model, task, epochs=nlp_context.offline_epochs
        ).final_test

    benchmark(fine_tune_one_model)

    for context in (nlp_context, cv_context):
        result = fig1_distribution.run(context)
        emit(f"Fig. 1 ({context.modality})", fig1_distribution.render(result))
        assert result["accuracy_spread"] > 0.05
