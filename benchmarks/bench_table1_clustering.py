"""Table I benchmark — clustering-method comparison.

Times one hierarchical clustering of the NLP repository from its performance
matrix (the operation Table I compares across methods/similarities) and
prints the full table for both modalities.
"""

from __future__ import annotations

from conftest import emit

from repro.core.config import ClusteringConfig
from repro.core.model_clustering import ModelClusterer
from repro.experiments import table1_clustering_methods


def test_table1_clustering_methods(nlp_context, cv_context, contexts, benchmark):
    matrix = nlp_context.matrix
    cards = nlp_context.hub.model_cards()

    def cluster_once():
        return ModelClusterer(ClusteringConfig()).cluster(matrix, model_cards=cards)

    clustering = benchmark(cluster_once)
    assert clustering.assignment.num_clusters >= 2

    records = table1_clustering_methods.run(contexts)
    emit("Table I", table1_clustering_methods.render(records))

    # Shape check: performance-based similarity beats the text baseline under
    # hierarchical clustering for both modalities.
    for modality in ("nlp", "cv"):
        silhouettes = {
            (r["similarity"], r["method"]): r["silhouette"]
            for r in records
            if r["modality"] == modality
        }
        assert silhouettes[("performance", "hierarchical")] >= silhouettes[("text", "hierarchical")]
