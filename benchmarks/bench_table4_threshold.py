"""Table IV benchmark — fine-selection filtering-threshold sweep."""

from __future__ import annotations

from conftest import emit

from repro.experiments import table4_threshold


def test_table4_threshold(nlp_context, cv_context, benchmark):
    result = benchmark.pedantic(
        table4_threshold.run,
        args=(nlp_context,),
        kwargs={"targets": ("mnli",), "thresholds": (0.0,)},
        rounds=1,
        iterations=1,
    )
    assert result[0]["runtime_epochs"] > 0

    all_records = []
    for context in (nlp_context, cv_context):
        records = table4_threshold.run(context)
        all_records.extend(records)
        # Shape check: raising the threshold never lowers accuracy and never
        # lowers runtime (it keeps borderline models alive longer).
        by_target = {}
        for record in records:
            by_target.setdefault(record["target"], []).append(record)
        for rows in by_target.values():
            rows.sort(key=lambda r: float(r["threshold"].rstrip("%")))
            runtimes = [r["runtime_epochs"] for r in rows]
            assert runtimes == sorted(runtimes)
    emit("Table IV", table4_threshold.render(all_records))
