"""Benchmark: out-of-core offline phase under a hard matrix-memory budget.

Demonstrates the PR-4 claim end-to-end: an ``n = 5000`` synthetic zoo's
offline phase (Eq. 1 similarity -> distance conversion -> merge-threshold
estimation -> agglomerative clustering) runs with every ``(n, n)`` matrix
memory-mapped in the :mod:`repro.store` matrix store, and peak *tracked*
matrix memory (``tracemalloc``) stays under a configurable budget —
~256 MB by default, where the dense in-RAM path would need more than
190 MB for the similarity matrix alone plus distance, working-copy and
threshold intermediates (~800 MB total).

Two tiers:

* full (default): an equivalence phase (dense vs out-of-core offline build
  at ``n = 400``, bitwise), then the budgeted ``n = 5000`` build with the
  memory gate.  Expect minutes of CPU: similarity and distance stream in
  seconds, the clustering merge loop is the quadratic tail (see
  ``docs/scaling.md``).
* ``--smoke``: the equivalence phase at ``n = 96`` plus a miniature
  budgeted build at ``n = 256``, seconds in total — this is what
  ``make bench-smoke`` runs in CI on every change.

Run with::

    PYTHONPATH=src python benchmarks/bench_ooc_scaling.py [--smoke]

Exits non-zero if any out-of-core result diverges bitwise from the dense
oracle or the budgeted build exceeds its memory gate.  Timing/memory
records are written as JSON (``--json-out``, default
``benchmarks/bench_ooc_scaling.json``) for the CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.config import ClusteringConfig, SimilarityConfig
from repro.core.model_clustering import ModelClusterer
from repro.core.performance import PerformanceMatrix

NUM_DATASETS = 40
TOP_K = 5
#: Hard gate on tracked peak matrix memory of the budgeted build.
DEFAULT_BUDGET_MB = 256
#: In-flight streaming budget handed to SimilarityConfig.
DEFAULT_IN_FLIGHT_MB = 64


def _random_matrix(rng: np.random.Generator, n: int) -> PerformanceMatrix:
    return PerformanceMatrix(
        dataset_names=[f"d{i}" for i in range(NUM_DATASETS)],
        model_names=[f"m{j}" for j in range(n)],
        values=rng.uniform(0.1, 0.95, size=(NUM_DATASETS, n)),
    )


def _spill_config(store_dir: str, in_flight_mb: int) -> SimilarityConfig:
    return SimilarityConfig(
        spill_threshold_bytes=0,
        max_bytes_in_flight=in_flight_mb * 1024 * 1024,
        store_dir=store_dir,
    )


def run_equivalence(n: int) -> dict:
    """Dense vs out-of-core offline build at ``n`` — must match bitwise."""
    rng = np.random.default_rng(7)
    matrix = _random_matrix(rng, n)
    config = ClusteringConfig(top_k=TOP_K)
    dense = ModelClusterer(config).cluster(matrix, cache=False)
    with tempfile.TemporaryDirectory(prefix="bench-ooc-") as tmp:
        spilled = ModelClusterer(config).cluster(
            matrix,
            cache=False,
            similarity_config=_spill_config(tmp, in_flight_mb=1),
        )
        checks = {
            "similarity": bool(
                np.array_equal(dense.similarity, spilled.similarity)
            ),
            "labels": bool(
                np.array_equal(
                    dense.assignment.labels, spilled.assignment.labels
                )
            ),
            "representatives": dense.representatives == spilled.representatives,
            "threshold": dense.extras.get("distance_threshold")
            == spilled.extras.get("distance_threshold"),
            "silhouette": dense.silhouette == spilled.silhouette,
            "memmapped": isinstance(spilled.similarity, np.memmap),
        }
    return {"n": n, "checks": checks, "identical": all(checks.values())}


def run_budgeted_build(n: int, *, budget_mb: int, in_flight_mb: int) -> dict:
    """Out-of-core offline build at ``n`` under a tracked-memory gate."""
    rng = np.random.default_rng(0)
    matrix = _random_matrix(rng, n)
    dense_matrix_mb = SimilarityConfig.dense_matrix_bytes(n) / 1e6
    with tempfile.TemporaryDirectory(prefix="bench-ooc-") as tmp:
        config = _spill_config(tmp, in_flight_mb)
        tracemalloc.start()
        started = time.perf_counter()
        clustering = ModelClusterer(ClusteringConfig(top_k=TOP_K)).cluster(
            matrix, cache=False, similarity_config=config
        )
        elapsed = time.perf_counter() - started
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        store_bytes = sum(
            path.stat().st_size for path in Path(tmp).glob("*.npy")
        )
        record = {
            "n": n,
            "d": NUM_DATASETS,
            "budget_mb": budget_mb,
            "max_bytes_in_flight_mb": in_flight_mb,
            "elapsed_seconds": elapsed,
            "peak_tracked_mb": peak_bytes / 1e6,
            "store_mb": store_bytes / 1e6,
            "num_clusters": int(clustering.assignment.num_clusters),
            "memmapped": isinstance(clustering.similarity, np.memmap),
            "dense_similarity_mb": dense_matrix_mb,
            # Dense would additionally hold the distance matrix, the
            # clustering working copy and the threshold buffer in RAM.
            "dense_estimate_mb": dense_matrix_mb * 3.5,
            "within_budget": peak_bytes / 1e6 <= budget_mb,
        }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, equivalence + budget gate only (the CI tier)",
    )
    parser.add_argument("--n", type=int, default=5000, help="budgeted-build size")
    parser.add_argument(
        "--budget-mb",
        type=int,
        default=DEFAULT_BUDGET_MB,
        help=f"peak tracked matrix memory gate (default {DEFAULT_BUDGET_MB})",
    )
    parser.add_argument(
        "--in-flight-mb",
        type=int,
        default=DEFAULT_IN_FLIGHT_MB,
        help="SimilarityConfig.max_bytes_in_flight in MB "
        f"(default {DEFAULT_IN_FLIGHT_MB})",
    )
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).parent / "bench_ooc_scaling.json"),
        metavar="FILE",
        help="write the records as JSON (CI uploads these)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        equivalence_n, build_n, budget_mb = 96, 256, args.budget_mb
    else:
        equivalence_n, build_n, budget_mb = 400, args.n, args.budget_mb

    print(f"[1/2] equivalence: dense vs out-of-core build at n={equivalence_n} ...")
    equivalence = run_equivalence(equivalence_n)
    for name, passed in equivalence["checks"].items():
        print(f"      {name:<16} {'ok' if passed else 'MISMATCH'}")

    print(
        f"[2/2] budgeted out-of-core build at n={build_n} "
        f"(gate {budget_mb} MB tracked, {args.in_flight_mb} MB in flight) ..."
    )
    build = run_budgeted_build(
        build_n, budget_mb=budget_mb, in_flight_mb=args.in_flight_mb
    )
    print(
        f"      built {build['n']} models in {build['elapsed_seconds']:.1f}s: "
        f"{build['num_clusters']} clusters, "
        f"peak tracked {build['peak_tracked_mb']:.0f} MB "
        f"(gate {budget_mb} MB), store {build['store_mb']:.0f} MB on disk"
    )
    print(
        f"      dense path would hold >= {build['dense_similarity_mb']:.0f} MB "
        f"for the similarity matrix alone "
        f"(~{build['dense_estimate_mb']:.0f} MB with intermediates)"
    )

    payload = {"equivalence": equivalence, "budgeted_build": build}
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"      records written to {args.json_out}")

    failed = False
    if not equivalence["identical"]:
        print("FAIL: out-of-core build diverged from the dense oracle")
        failed = True
    if not build["within_budget"]:
        print(
            f"FAIL: peak tracked memory {build['peak_tracked_mb']:.0f} MB "
            f"exceeded the {budget_mb} MB budget"
        )
        failed = True
    if not build["memmapped"]:
        print("FAIL: budgeted build did not produce memory-mapped artifacts")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
